package overlap

import (
	"testing"

	"gnbody/internal/align"
	"gnbody/internal/genome"
	"gnbody/internal/kmer"
	"gnbody/internal/seq"
)

func TestCandidatesBasic(t *testing.T) {
	// Three reads sharing the 5-mer ACGTA; read pairs (0,1), (0,2), (1,2).
	rs := seq.NewReadSet([]seq.Seq{
		seq.MustFromString("TTACGTATT"),
		seq.MustFromString("ACGTAGGGG"),
		seq.MustFromString("CCCCACGTA"),
	})
	idx, err := kmer.Index(rs, 5, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tasks := Candidates(idx, 5, func(id seq.ReadID) int { return rs.Get(id).Len() })
	if len(tasks) != 3 {
		t.Fatalf("got %d tasks, want 3: %+v", len(tasks), tasks)
	}
	SortTasks(tasks)
	wantPairs := [][2]seq.ReadID{{0, 1}, {0, 2}, {1, 2}}
	for i, w := range wantPairs {
		if tasks[i].A != w[0] || tasks[i].B != w[1] {
			t.Errorf("task %d = (%d,%d), want %v", i, tasks[i].A, tasks[i].B, w)
		}
		if tasks[i].A >= tasks[i].B {
			t.Errorf("task %d not ordered", i)
		}
	}
	// Seed positions must point at the shared 5-mer up to strand:
	// canonical(window) must equal canonical(ACGTA). (TACGT in read 0
	// canonicalises to ACGTA too, so the literal window may differ.)
	wantCode := kmer.Canonical(kmer.Encode(seq.MustFromString("ACGTA"), 0, 5), 5)
	for _, task := range tasks {
		a := rs.Get(task.A).Seq
		win := a[task.Seed.PosA : task.Seed.PosA+5]
		if kmer.Canonical(kmer.Encode(win, 0, 5), 5) != wantCode {
			t.Errorf("seed in A points at %q (canonical mismatch)", win.String())
		}
	}
}

func TestCandidatesDedup(t *testing.T) {
	// Two reads share two distinct 4-mers; only one task may result.
	rs := seq.NewReadSet([]seq.Seq{
		seq.MustFromString("AAAACCCCTTTT"),
		seq.MustFromString("AAAAGGGGTTTT"),
	})
	// AAAA shared and TTTT shared — but canonical(TTTT) == canonical(AAAA)!
	// Use CCAA / GGAA style instead. Rebuild with genuinely distinct kmers.
	rs = seq.NewReadSet([]seq.Seq{
		seq.MustFromString("ACCAGTTGA"),
		seq.MustFromString("ACCATGTTGA"),
	})
	idx, err := kmer.Index(rs, 4, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, occ := range idx {
		if len(occ) >= 2 {
			shared++
		}
	}
	if shared < 2 {
		t.Fatalf("test needs >=2 shared kmers, got %d", shared)
	}
	tasks := Candidates(idx, 4, func(id seq.ReadID) int { return rs.Get(id).Len() })
	if len(tasks) != 1 {
		t.Errorf("got %d tasks, want 1 (dedup)", len(tasks))
	}
}

func TestCandidatesNoSelfPairs(t *testing.T) {
	// A read containing the same 4-mer twice must not pair with itself.
	rs := seq.NewReadSet([]seq.Seq{
		seq.MustFromString("ACCAGGACCA"),
		seq.MustFromString("TTTTTTTTTT"),
	})
	idx, err := kmer.Index(rs, 4, 1, 10, 0) // lo=1 to retain single-read kmers
	if err != nil {
		t.Fatal(err)
	}
	tasks := Candidates(idx, 4, func(id seq.ReadID) int { return rs.Get(id).Len() })
	for _, task := range tasks {
		if task.A == task.B {
			t.Errorf("self pair: %+v", task)
		}
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	g := genome.Generate(genome.Config{Length: 5000, Seed: 31})
	smp, err := genome.NewSampler(g, genome.ReadConfig{Coverage: 8, MeanLen: 400, SigmaLog: 0.3, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := smp.Sample()
	run := func() []Task {
		idx, err := kmer.Index(rs, 13, 2, 40, 1)
		if err != nil {
			t.Fatal(err)
		}
		return Candidates(idx, 13, func(id seq.ReadID) int { return rs.Get(id).Len() })
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("nondeterministic task count: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestFromReadSetSensitivity(t *testing.T) {
	// Error-free reads from a random genome: every true overlap >= 200bp
	// must be found (random 17-mers are effectively unique in 20kb).
	g := genome.Generate(genome.Config{Length: 20000, Seed: 41})
	smp, err := genome.NewSampler(g, genome.ReadConfig{Coverage: 6, MeanLen: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rs, truth := smp.Sample()
	tasks, lo, hi, err := FromReadSet(rs, Config{K: 17, Lo: 2, Hi: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || hi != 1<<20 {
		t.Errorf("window = [%d,%d]", lo, hi)
	}
	got := map[uint64]bool{}
	for _, task := range tasks {
		got[task.Key()] = true
	}
	want := genome.OverlapGraph(truth, 200)
	missed := 0
	for _, p := range want {
		k := uint64(p[0])<<32 | uint64(p[1])
		if !got[k] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("missed %d/%d true overlaps >= 200bp on error-free reads", missed, len(want))
	}
}

func TestFromReadSetBELLAWindow(t *testing.T) {
	g := genome.Generate(genome.Config{Length: 10000, Seed: 51})
	smp, _ := genome.NewSampler(g, genome.ReadConfig{Coverage: 10, MeanLen: 500, Seed: 52})
	rs, _ := smp.Sample()
	_, lo, hi, err := FromReadSet(rs, Config{K: 17, Coverage: 10, ErrRate: 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 {
		t.Errorf("lo = %d, want 2", lo)
	}
	if hi < 10 || hi > 30 {
		t.Errorf("hi = %d, want near-ish coverage 10 upper tail", hi)
	}
	if _, _, _, err := FromReadSet(rs, Config{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAlignTaskForwardAndRC(t *testing.T) {
	sc := align.DefaultScoring()
	a := seq.MustFromString("TTTTACGTACGTACGGAAAA")
	bFwd := seq.MustFromString("ACGTACGTACGGCCCC")
	// Forward task: shared non-palindromic 8-mer ACGTACGG at a[8], bFwd[4].
	res, err := AlignTask(a, bFwd, Task{A: 0, B: 1, Seed: Seed{PosA: 8, PosB: 4, K: 8}}, sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 12-2 { // 12-base common region
		t.Errorf("forward score = %d, want ≈12", res.Score)
	}
	// RC task: the stored read B is the reverse complement of bFwd. Seed.PosB
	// is, per the Candidates contract, the seed position within
	// revcomp(stored B) == bFwd — i.e. still 4.
	bStored := bFwd.ReverseComplement()
	resRC, err := AlignTask(a, bStored, Task{A: 0, B: 1, Seed: Seed{PosA: 8, PosB: 4, K: 8, RC: true}}, sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if resRC.Score != res.Score {
		t.Errorf("RC score = %d, forward score = %d; strand handling broken", resRC.Score, res.Score)
	}
}

func TestOppositeStrandCandidates(t *testing.T) {
	// Read 1 is the reverse complement of a chunk of read 0; candidates
	// must carry RC=true and AlignTask must recover the full overlap.
	core := seq.MustFromString("ACCAGTTGACCATGACGGTACCAGTTGACGGTA")
	a := append(seq.MustFromString("TTTTT"), core...)
	b := core.ReverseComplement()
	rs := seq.NewReadSet([]seq.Seq{a, b})
	idx, err := kmer.Index(rs, 11, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tasks := Candidates(idx, 11, func(id seq.ReadID) int { return rs.Get(id).Len() })
	if len(tasks) != 1 {
		t.Fatalf("got %d tasks, want 1", len(tasks))
	}
	task := tasks[0]
	if !task.Seed.RC {
		t.Fatal("task not flagged RC")
	}
	res, err := AlignTask(rs.Get(task.A).Seq, rs.Get(task.B).Seq, task, align.DefaultScoring(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != len(core) {
		t.Errorf("RC overlap score = %d, want %d", res.Score, len(core))
	}
}

func TestTaskKey(t *testing.T) {
	a := Task{A: 1, B: 2}
	b := Task{A: 1, B: 3}
	if a.Key() == b.Key() {
		t.Error("distinct pairs share a key")
	}
}

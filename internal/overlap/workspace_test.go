package overlap

import (
	"math/rand"
	"testing"

	"gnbody/internal/align"
	"gnbody/internal/seq"
)

// TestAlignTaskWSMatchesAlignTask pins the workspace form to the transient
// form — forward and reverse-complement tasks alike — on one dirty,
// reused workspace.
func TestAlignTaskWSMatchesAlignTask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := align.NewWorkspace()
	sc := align.DefaultScoring()
	for iter := 0; iter < 200; iter++ {
		n := 30 + rng.Intn(200)
		a := make(seq.Seq, n)
		for i := range a {
			a[i] = seq.Base(rng.Intn(seq.NumBases))
		}
		b := a.Clone()
		for m := 0; m < n/10; m++ {
			b[rng.Intn(n)] = seq.Base(rng.Intn(seq.NumBases))
		}
		k := 1 + rng.Intn(17)
		task := Task{A: 0, B: 1, Seed: Seed{
			PosA: int32(rng.Intn(n - k + 1)),
			PosB: int32(rng.Intn(n - k + 1)),
			K:    int16(k),
			RC:   iter%2 == 1,
		}}
		want, errW := AlignTask(a, b, task, sc, 15)
		got, errG := AlignTaskWS(w, a, b, task, sc, 15)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("error mismatch: transient %v, workspace %v", errW, errG)
		}
		if errW == nil && got != want {
			t.Fatalf("task %+v:\n workspace %+v\n transient %+v", task, got, want)
		}
	}
}

// TestAlignTaskWSAllocFree: a warm workspace serves both strand
// orientations without heap allocation — the RC path included, since the
// reverse complement comes from the workspace scratch.
func TestAlignTaskWSAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1500
	a := make(seq.Seq, n)
	for i := range a {
		a[i] = seq.Base(rng.Intn(4))
	}
	b := a.Clone()
	for m := 0; m < n/10; m++ {
		b[rng.Intn(n)] = seq.Base(rng.Intn(4))
	}
	sc := align.DefaultScoring()
	w := align.NewWorkspace()
	fw := Task{A: 0, B: 1, Seed: Seed{PosA: int32(n / 2), PosB: int32(n / 2), K: 17}}
	rc := fw
	rc.Seed.RC = true
	rc.Seed.PosB = int32(n) - rc.Seed.PosB - int32(rc.Seed.K)
	for _, task := range []Task{fw, rc} {
		task := task
		if _, err := AlignTaskWS(w, a, b, task, sc, 15); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := AlignTaskWS(w, a, b, task, sc, 15); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("AlignTaskWS(RC=%v) allocates %.1f times per run, want 0", task.Seed.RC, allocs)
		}
	}
}

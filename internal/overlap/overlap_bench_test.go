package overlap

import (
	"testing"

	"gnbody/internal/align"
	"gnbody/internal/genome"
	"gnbody/internal/kmer"
	"gnbody/internal/seq"
)

func benchReads(b *testing.B) *seq.ReadSet {
	b.Helper()
	g := genome.Generate(genome.Config{Length: 100000, Seed: 1})
	smp, err := genome.NewSampler(g, genome.ReadConfig{Coverage: 8, MeanLen: 2000, SigmaLog: 0.3, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := smp.Sample()
	return rs
}

func BenchmarkCandidates(b *testing.B) {
	rs := benchReads(b)
	idx, err := kmer.Index(rs, 17, 2, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks := Candidates(idx, 17, func(id seq.ReadID) int { return rs.Get(id).Len() })
		if len(tasks) == 0 {
			b.Fatal("no tasks")
		}
	}
}

func BenchmarkAlignTask(b *testing.B) {
	rs := benchReads(b)
	tasks, _, _, err := FromReadSet(rs, Config{K: 17, Lo: 2, Hi: 50})
	if err != nil || len(tasks) == 0 {
		b.Fatalf("tasks=%d err=%v", len(tasks), err)
	}
	sc := align.DefaultScoring()
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		t := tasks[i%len(tasks)]
		res, err := AlignTask(rs.Get(t.A).Seq, rs.Get(t.B).Seq, t, sc, 15)
		if err != nil {
			b.Fatal(err)
		}
		cells += int64(res.Cells)
	}
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}

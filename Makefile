# gnbody — build, test, and fuzz gates. Pure Go, no external tools.
#
#   make check   fast gate: vet + gofmt + build + full test suite
#   make race    full suite under the race detector (what CI runs)
#   make fuzz    10s smoke per fuzz target (go fuzzing allows one -fuzz
#                target per invocation, hence three runs)
#   make golden  regenerate the exporter golden fixtures after an
#                intentional trace/metrics schema change

GO      ?= go
FUZZT   ?= 10s

.PHONY: check vet fmtcheck build test race fuzz golden ci

check: vet fmtcheck build test

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The wall-clock experiments in internal/expt run ~10x slower under the
# race detector; the default 10m per-package test timeout is not enough.
race:
	$(GO) test -race -timeout 45m ./...

fuzz:
	$(GO) test -fuzz=FuzzFASTA -fuzztime $(FUZZT) ./internal/seq/
	$(GO) test -fuzz=FuzzFASTQ -fuzztime $(FUZZT) ./internal/seq/
	$(GO) test -fuzz=FuzzXDrop -fuzztime $(FUZZT) ./internal/align/

golden:
	$(GO) test -run TestGolden ./internal/trace/ -update
	$(GO) test -run TestGolden ./internal/trace/

ci: check race fuzz

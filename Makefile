# gnbody — build, test, and fuzz gates. Pure Go, no external tools.
#
#   make check   fast gate: vet + gofmt + build + full test suite
#   make race    full suite under the race detector (what CI runs)
#   make fuzz    10s smoke per fuzz target (go fuzzing allows one -fuzz
#                target per invocation, hence one run per target)
#   make golden  regenerate the exporter golden fixtures after an
#                intentional trace/metrics schema change
#   make chaos   fault-injection battery under the race detector: every
#                injected crash/stall/departure must end in a clean
#                per-rank error, never a hang or a panic
#   make dist-smoke  end-to-end multi-process check: a 4-process TCP
#                dibella run must byte-match the single-process output,
#                and kill -9 of one rank must fail the job promptly,
#                naming the lost rank
#   make assemble-smoke  end-to-end assembly check: error-free synthetic
#                reads must assemble into one contig spanning the genome,
#                byte-identical (edges and contigs) between the serial run
#                and a race-built 4-process TCP run
#   make placement-smoke  topology-aware placement check: a race-built
#                4-process TCP run in nodes of 2 under a non-identity
#                rank→slot placement must byte-match the serial artifacts
#                at every stage, with nonzero bytes on both tiers
#   make serve-smoke  resident-service check under the race detector: a
#                race-built dibserve takes two concurrent jobs, one of
#                which chaos-kills a worker rank mid-run; the victim job
#                must be retried to completion or fail naming the rank,
#                the other must complete, and SIGTERM must drain the
#                server to a clean exit with job metrics flushed
#   make bench   full kernel benchmark run (count 5): writes the raw
#                output to bench/bench_new.txt and the before/after
#                comparison against bench/bench_baseline.txt (the
#                committed scalar reference numbers) to $(BENCH_JSON)
#   make bench-smoke  fast CI gate: alloc-free guard tests plus a short
#                kernel bench pass gated against the committed baseline
#                (benchfmt -gate) — catches hot-path allocation and
#                kernel time regressions without the full count-5 run

GO      ?= go
FUZZT   ?= 10s
BENCHN  ?= 5
BENCH_JSON ?= BENCH_9.json

.PHONY: check vet fmtcheck build test race fuzz golden chaos dist-smoke serve-smoke assemble-smoke placement-smoke bench bench-smoke bench-comm ci

check: vet fmtcheck build test

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The wall-clock experiments in internal/expt run ~10x slower under the
# race detector; the default 10m per-package test timeout is not enough.
race:
	$(GO) test -race -timeout 45m ./...

fuzz:
	$(GO) test -fuzz=FuzzFASTA$$ -fuzztime $(FUZZT) ./internal/seq/
	$(GO) test -fuzz=FuzzFASTARange$$ -fuzztime $(FUZZT) ./internal/seq/
	$(GO) test -fuzz=FuzzFASTQ$$ -fuzztime $(FUZZT) ./internal/seq/
	$(GO) test -fuzz=FuzzXDrop$$ -fuzztime $(FUZZT) ./internal/align/
	$(GO) test -fuzz=FuzzXDropDiff$$ -fuzztime $(FUZZT) ./internal/align/
	$(GO) test -fuzz=FuzzXDropSWARDiff$$ -fuzztime $(FUZZT) ./internal/align/
	$(GO) test -fuzz=FuzzFrame -fuzztime $(FUZZT) ./internal/transport/
	$(GO) test -fuzz=FuzzCacheEvict -fuzztime $(FUZZT) ./internal/core/
	$(GO) test -fuzz=FuzzJobRequest -fuzztime $(FUZZT) ./internal/serve/
	$(GO) test -fuzz=FuzzOverlapClassify -fuzztime $(FUZZT) ./internal/graph/

golden:
	$(GO) test -run TestGolden ./internal/trace/ -update
	$(GO) test -run TestGolden ./internal/trace/

chaos:
	$(GO) test -race -run 'Chaos|Fault' ./...

# True multi-process smoke: fork 4 dibella worker processes over localhost
# TCP and require byte-identical output to the 1-process in-memory run, for
# both coordination strategies.
dist-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/genreads ./cmd/genreads && \
	$(GO) build -o $$tmp/dibella ./cmd/dibella && \
	$$tmp/genreads -genome 60000 -coverage 8 -meanlen 3000 -seed 3 -out $$tmp/reads.fa && \
	global=$$(grep -v '^>' $$tmp/reads.fa | tr -d '\n' | wc -c); \
	for mode in bsp async; do \
		$$tmp/dibella -in $$tmp/reads.fa -mode $$mode -procs 1 -coverage 8 -out $$tmp/ref.tsv 2>/dev/null && \
		$$tmp/dibella -in $$tmp/reads.fa -mode $$mode -dist -procs 4 -coverage 8 \
			-metrics $$tmp/met-$$mode.csv -out $$tmp/dist.tsv 2>/dev/null && \
		cmp $$tmp/ref.tsv $$tmp/dist.tsv && echo "dist-smoke $$mode: OK ($$(wc -l < $$tmp/ref.tsv) hits)" || exit 1; \
		for rk in 0 1 2 3; do \
			awk -F, -v global=$$global -v rk=$$rk -v mode=$$mode ' \
				NR==1 { for (i = 1; i <= NF; i++) col[$$i] = i; next } \
				$$1 == rk { sb = $$col["store_bytes"]; oop = $$col["oop_gets"]; \
				  if (oop != 0) { printf "dist-smoke %s rank %s: %d out-of-partition Gets\n", mode, rk, oop; exit 1 } \
				  if (sb <= 0 || sb * 10 >= global * 4) { printf "dist-smoke %s rank %s: resident %d bytes of %d global — residency broken\n", mode, rk, sb, global; exit 1 } \
				  printf "dist-smoke %s rank %s: resident %d of %d global read bytes, 0 OOP gets\n", mode, rk, sb, global }' \
				$$tmp/met-$$mode.csv.rank$$rk || exit 1; \
		done; \
	done; \
	$$tmp/genreads -genome 300000 -coverage 10 -meanlen 3000 -seed 5 -out $$tmp/big.fa && \
	$$tmp/dibella -in $$tmp/big.fa -mode bsp -dist -procs 4 -coverage 10 -progress-deadline 15s \
		-out $$tmp/kill.tsv >/dev/null 2>$$tmp/kill.err & job=$$!; \
	found=0; for i in $$(seq 1 100); do \
		pgrep -f "$$tmp/dibella.* -rank 1 " >/dev/null && { found=1; break; }; sleep 0.1; \
	done; \
	[ $$found = 1 ] || { echo "dist-smoke kill: rank 1 worker never appeared"; kill $$job 2>/dev/null; exit 1; }; \
	pkill -9 -f "$$tmp/dibella.* -rank 1 "; \
	if wait $$job; then echo "dist-smoke kill: job exited zero after a rank was killed"; exit 1; fi; \
	grep -q "rank 1" $$tmp/kill.err || { echo "dist-smoke kill: failure does not name rank 1:"; cat $$tmp/kill.err; exit 1; }; \
	echo "dist-smoke kill-one-rank: OK (job failed promptly, naming rank 1)"

# Resident-service smoke: dibserve (race-built) over the dist backend with
# chaos enabled. Two jobs run concurrently on separate resident worlds; the
# victim job arms chaos_kill_rank=1, so its world loses a rank mid-run and
# the job is either rescheduled onto a rebuilt world (retries >= 1) or
# fails with a typed error naming rank 1. The healthy job must stream hits
# regardless, and SIGTERM must drain to exit 0 with per-job metrics on disk.
serve-smoke:
	@tmp=$$(mktemp -d); srv=; trap 'kill $$srv 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o $$tmp/dibserve ./cmd/dibserve && \
	$(GO) build -o $$tmp/genreads ./cmd/genreads && \
	$$tmp/genreads -genome 60000 -coverage 8 -meanlen 3000 -seed 3 -out $$tmp/reads.fa && \
	$$tmp/dibserve -addr 127.0.0.1:0 -backend dist -procs 3 -worlds 2 -chaos \
		-progress-deadline 2s -max-retries 1 -ready-file $$tmp/addr \
		-metrics $$tmp/jobs.csv 2>$$tmp/serve.log & srv=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "serve-smoke: server never became ready"; cat $$tmp/serve.log; exit 1; }; \
	base="http://$$(cat $$tmp/addr)"; \
	spec="k=15&lofreq=2&hifreq=60&x=15&minscore=100&mode=bsp"; \
	curl -sf -X POST -H 'Content-Type: text/x-fasta' --data-binary @$$tmp/reads.fa \
		"$$base/v1/jobs?$$spec&chaos_kill_rank=1" > $$tmp/victim.json || { echo "serve-smoke: victim submit failed"; cat $$tmp/serve.log; exit 1; }; \
	curl -sf -X POST -H 'Content-Type: text/x-fasta' --data-binary @$$tmp/reads.fa \
		"$$base/v1/jobs?$$spec" > $$tmp/healthy.json || { echo "serve-smoke: healthy submit failed"; exit 1; }; \
	vid=$$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' $$tmp/victim.json); \
	hid=$$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' $$tmp/healthy.json); \
	[ -n "$$vid" ] && [ -n "$$hid" ] || { echo "serve-smoke: no job ids in submit responses"; exit 1; }; \
	curl -s -m 300 -o $$tmp/victim.tsv -w '%{http_code}' "$$base/v1/jobs/$$vid/hits?wait=1" > $$tmp/victim.code & poll=$$!; \
	hcode=$$(curl -s -m 300 -o $$tmp/healthy.tsv -w '%{http_code}' "$$base/v1/jobs/$$hid/hits?wait=1"); \
	wait $$poll; vcode=$$(cat $$tmp/victim.code); \
	[ "$$hcode" = 200 ] && [ -s $$tmp/healthy.tsv ] || { echo "serve-smoke: healthy job did not stream hits (status $$hcode)"; cat $$tmp/serve.log; exit 1; }; \
	echo "serve-smoke healthy: OK ($$(wc -l < $$tmp/healthy.tsv) hits)"; \
	if [ "$$vcode" = 200 ]; then \
		retries=$$(curl -s "$$base/v1/jobs/$$vid" | sed -n 's/.*"retries":\([0-9]*\).*/\1/p'); \
		[ "$$retries" -ge 1 ] || { echo "serve-smoke: victim completed with $$retries retries — the chaos kill never bit"; exit 1; }; \
		cmp $$tmp/victim.tsv $$tmp/healthy.tsv || { echo "serve-smoke: retried victim's hits differ from the healthy job's"; exit 1; }; \
		echo "serve-smoke victim: OK (retried $$retries time(s), hits match)"; \
	else \
		grep -q "rank 1" $$tmp/victim.tsv || { echo "serve-smoke: victim failure does not name rank 1:"; cat $$tmp/victim.tsv; exit 1; }; \
		echo "serve-smoke victim: OK (failed naming rank 1 after retry budget)"; \
	fi; \
	kill -TERM $$srv; \
	if ! wait $$srv; then echo "serve-smoke: server did not drain cleanly:"; cat $$tmp/serve.log; exit 1; fi; \
	srv=; \
	grep -q "$$hid" $$tmp/jobs.csv || { echo "serve-smoke: drained server left no job metrics"; exit 1; }; \
	echo "serve-smoke drain: OK (clean exit, job metrics flushed)"

# End-to-end assembly smoke: error-free reads sampled from a synthetic
# genome must assemble back into one contig spanning it, and both the
# reduced string graph's edge TSV and the contig FASTA must be
# byte-identical between the 1-process serial run and a race-built
# 4-process TCP run.
assemble-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o $$tmp/dibella ./cmd/dibella && \
	$(GO) build -o $$tmp/genreads ./cmd/genreads && \
	$$tmp/genreads -genome 30000 -coverage 8 -meanlen 600 -sigma 0.1 -error 0 -both -seed 5 \
		-out $$tmp/reads.fa -layout $$tmp/layout.tsv && \
	[ "$$(tail -n +2 $$tmp/layout.tsv | wc -l)" = "$$(grep -c '^>' $$tmp/reads.fa)" ] || \
		{ echo "assemble-smoke: layout rows != reads"; exit 1; }; \
	args="-in $$tmp/reads.fa -k 15 -lofreq 2 -hifreq 60 -minscore 100 -x 20"; \
	for st in reduce contigs; do \
		$$tmp/dibella $$args -procs 1 -stages $$st -out $$tmp/$$st.serial 2>/dev/null && \
		$$tmp/dibella $$args -dist -procs 4 -stages $$st -out $$tmp/$$st.dist 2>/dev/null && \
		cmp $$tmp/$$st.serial $$tmp/$$st.dist && \
		echo "assemble-smoke $$st: OK (serial == 4-rank dist)" || exit 1; \
	done; \
	[ "$$(grep -c '^>' $$tmp/contigs.serial)" = 1 ] || { echo "assemble-smoke: expected one contig"; exit 1; }; \
	len=$$(sed -n '1s/.*len=\([0-9]*\).*/\1/p' $$tmp/contigs.serial); \
	[ "$$len" -ge 29000 ] || { echo "assemble-smoke: contig $$len bp does not span the 30000 bp genome"; exit 1; }; \
	echo "assemble-smoke: OK (one contig, $$len of 30000 bp)"

# Placement smoke: a race-built 4-process TCP run in nodes of 2 under a
# non-identity placement must stay byte-identical to the serial reference
# for every artifact (hits, reduced graph, contigs). Placement 0,2,1,3
# regroups the nodes to {0,2} and {1,3} — a genuinely different grouping
# from identity's {0,1},{2,3} — and the per-rank metrics must show the
# traffic actually split across both tiers (nonzero intra AND inter
# bytes), proving the leader relay ran rather than falling back to the
# flat path.
placement-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o $$tmp/dibella ./cmd/dibella && \
	$(GO) build -o $$tmp/genreads ./cmd/genreads && \
	$$tmp/genreads -genome 30000 -coverage 8 -meanlen 600 -sigma 0.1 -error 0 -both -seed 5 \
		-out $$tmp/reads.fa && \
	args="-in $$tmp/reads.fa -k 15 -lofreq 2 -hifreq 60 -minscore 100 -x 20"; \
	for st in overlap reduce contigs; do \
		$$tmp/dibella $$args -procs 1 -stages $$st -out $$tmp/$$st.serial 2>/dev/null && \
		$$tmp/dibella $$args -dist -procs 4 -node-size 2 -placement 0,2,1,3 \
			-stages $$st -metrics $$tmp/met-$$st.csv -out $$tmp/$$st.placed 2>/dev/null && \
		cmp $$tmp/$$st.serial $$tmp/$$st.placed && \
		echo "placement-smoke $$st: OK (serial == placed 4-rank dist)" || exit 1; \
	done; \
	awk -F, ' \
		NR==1 { for (i = 1; i <= NF; i++) col[$$i] = i; next } \
		{ intra += $$col["intra_bytes"]; inter += $$col["inter_bytes"] } \
		END { if (intra <= 0 || inter <= 0) { \
			printf "placement-smoke: tier split broken (intra %d, inter %d)\n", intra, inter; exit 1 } \
		  printf "placement-smoke tiers: OK (%d intra, %d inter bytes)\n", intra, inter }' \
		$$(ls $$tmp/met-contigs.csv.rank*) || exit 1

# Full kernel benchmark run. bench/bench_baseline.txt is the committed
# scalar-kernel reference output of the same benchmarks (regenerate it
# with `make bench` on the commit being used as the baseline and copy
# bench/bench_new.txt over it); $(BENCH_JSON) records median/min/max per
# benchmark and unit plus the relative delta against that baseline.
bench:
	$(GO) test -run '^$$' -bench SeedExtend -benchmem -count $(BENCHN) \
		./internal/align/ | tee bench/bench_new.txt
	$(GO) run ./cmd/benchfmt -old bench/bench_baseline.txt \
		-json $(BENCH_JSON) bench/bench_new.txt

# Communication-volume comparison: the same benchmarks run cache-off/flat
# (baseline) then cache-on/aggregated, diffed into BENCH_10.json. The
# suite covers both the overlap exchange (dist-bsp) and the assembly
# stages' neighbour-fetch rounds (dist-assembly, which also reports
# graphfetches/op and graphcoalesced/op). wirefetches/op and interbytes/op
# are the numbers to watch: the cache halves the former, hierarchical
# aggregation trims the latter — so the interbytes gate only trips when
# the hierarchical path sends MORE cross-node bytes than the flat
# baseline, a genuine regression.
bench-comm:
	$(GO) test -run '^$$' -bench CommExchange -benchtime 1x \
		./internal/workload/ -args -cachebudget=0 | tee bench/comm_off.txt
	$(GO) test -run '^$$' -bench CommExchange -benchtime 1x \
		./internal/workload/ -args -cachebudget=-1 | tee bench/comm_on.txt
	$(GO) run ./cmd/benchfmt -old bench/comm_off.txt \
		-json BENCH_10.json -gate 10 -gateunits interbytes/op bench/comm_on.txt

# Fast allocation-regression gate for CI: the AllocsPerRun guard tests
# (kernel, codecs, wire decode, overlap workspace) plus one short bench
# pass gated at +10% ns/op against the committed baseline, so neither
# the benchmarks nor the SWAR speedup can rot silently.
bench-smoke:
	$(GO) test -run 'AllocFree' -v ./internal/align/ ./internal/core/ \
		./internal/seq/ ./internal/overlap/
	$(GO) test -run '^$$' -bench SeedExtend -benchtime 50x -benchmem \
		./internal/align/ | $(GO) run ./cmd/benchfmt \
		-old bench/bench_baseline.txt -gate 10

ci: check race fuzz chaos bench-smoke dist-smoke serve-smoke assemble-smoke placement-smoke

// Command dibserve runs the overlap pipeline as a resident, multi-tenant
// service: a pool of long-lived SPMD worlds behind an HTTP/JSON gateway.
// Clients POST read sets to /v1/jobs (JSON or FASTA), poll
// /v1/jobs/{id}, and stream hits from /v1/jobs/{id}/hits — in the exact
// TSV format the batch tool writes — while the expensive one-shot setup
// (world construction, alignment-workspace warm-up) is paid once at
// startup and amortised across every job.
//
// Endpoints:
//
//	POST /v1/jobs                submit (application/json or FASTA + query params)
//	GET  /v1/jobs/{id}           status
//	GET  /v1/jobs/{id}/hits      TSV hits (?wait=1 blocks until terminal)
//	GET  /v1/jobs/{id}/metrics   job-scoped per-rank metrics (JSON)
//	GET  /v1/stats               scheduler snapshot
//	GET  /healthz, /debug/vars, /debug/pprof/*
//
// SIGINT/SIGTERM drain gracefully: admission stops (503), queued jobs fail
// with a typed draining error, in-flight jobs finish, job metrics flush to
// -metrics, and the process exits 0.
//
// Usage:
//
//	dibserve -addr 127.0.0.1:8642 -backend dist -procs 4 -worlds 2 \
//	         [-admit-budget BYTES] [-chaos -progress-deadline 2s] \
//	         [-ready-file PATH] [-metrics out.csv]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gnbody/internal/serve"
	"gnbody/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8642", "listen address (port 0 picks a free port; see -ready-file)")
		backend    = flag.String("backend", "par", "resident-world backend: par (goroutine ranks) or dist (message-passing over the in-process fabric)")
		procs      = flag.Int("procs", 4, "ranks per resident world")
		worlds     = flag.Int("worlds", 2, "resident worlds in the pool (= concurrently running jobs)")
		mem        = flag.Int64("mem", 0, "per-rank exchange memory budget in bytes (0 = unlimited)")
		cacheB     = flag.Int64("cache-budget", 0, "per-rank remote-read cache budget in bytes (0 disables)")
		admit      = flag.Int64("admit-budget", 0, "admission budget: max wire bytes of all admitted read sets (0 = unlimited)")
		maxQueue   = flag.Int("max-queue", 64, "max queued (not yet running) jobs")
		maxRetries = flag.Int("max-retries", 1, "reschedules of a job lost to a rank failure before it fails for good")
		deadline   = flag.Duration("progress-deadline", 0, "dist: fail a rank blocked in a collective with no inbound traffic for this long (0 disables)")
		chaos      = flag.Bool("chaos", false, "allow jobs to arm chaos_kill_rank (dist backend only)")
		maxBody    = flag.Int64("max-body", 0, "max request body bytes (0 = 64 MiB default)")
		maxReads   = flag.Int("max-reads", 0, "max reads per job (0 = default)")
		readyFile  = flag.String("ready-file", "", "write the bound listen address to this file once serving (for scripts using port 0)")
		metricsOut = flag.String("metrics", "", "flush job-scoped per-rank metrics here on shutdown (CSV, or JSON if the path ends in .json)")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dibserve: "+format+"\n", args...)
	}
	srv, err := serve.New(serve.Config{
		PoolConfig: serve.PoolConfig{
			Backend: *backend, Ranks: *procs, Worlds: *worlds,
			MemBudget: *mem, CacheBudget: *cacheB,
			AdmitBudget: *admit, MaxQueue: *maxQueue, MaxRetries: *maxRetries,
			ProgressDeadline: *deadline, Chaos: *chaos,
			Logf: logf,
		},
		MaxBody: *maxBody,
		Limits:  serve.Limits{MaxReads: *maxReads},
	})
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			logf("-ready-file: %v", err)
			os.Exit(1)
		}
	}
	logf("serving on %s (backend=%s, %d worlds x %d ranks, chaos=%v)",
		ln.Addr(), *backend, *worlds, *procs, *chaos)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logf("%v — draining: admission stopped, finishing in-flight jobs", s)
	case err := <-serveErr:
		logf("listener failed: %v", err)
		srv.Drain()
		os.Exit(1)
	}

	// Drain first (stops admission, fails queued jobs with the typed
	// draining error, waits out in-flight jobs), then shut the HTTP side
	// down: blocked ?wait=1 pollers unblock the moment their jobs reach a
	// terminal state, so Shutdown converges quickly.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("http shutdown: %v", err)
	}
	if *metricsOut != "" {
		if err := flushJobMetrics(srv, *metricsOut); err != nil {
			logf("-metrics: %v", err)
			os.Exit(1)
		}
		logf("job metrics -> %s", *metricsOut)
	}
	st := srv.Pool().Stats()
	logf("drained: %d completed, %d failed, %d retried, %d world rebuilds",
		st.Completed, st.Failed, st.Retried, st.Rebuilds)
}

// flushJobMetrics writes every finished job's job-scoped per-rank rows.
func flushJobMetrics(srv *serve.Server, path string) error {
	var rows []trace.JobRow
	for _, j := range srv.Jobs() {
		rows = append(rows, j.Metrics()...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteJobMetricsJSON(f, rows)
	} else {
		err = trace.WriteJobMetricsCSV(f, rows)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Command scaling reproduces the paper's tables and figures.
//
// Each experiment prints a fixed-width table whose rows correspond to the
// paper's plotted series; EXPERIMENTS.md records the paper-vs-measured
// comparison for every one.
//
// Usage:
//
//	scaling -experiment table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|intranode|dist|serve|assembly|ablations|placement|all
//	        [-scale30 N] [-scale100 N] [-scaleccs N]   workload scale divisors
//	        [-rpn N]                                   simulated ranks per node
//	        [-nodes 8,16,32]                           node counts for sweeps
//	        [-seed N]
//	        [-csv DIR] [-json DIR]                     table exports
//	        [-trace FILE] [-metrics FILE]              runtime trace exports
//
// Multinode experiments run under the discrete-event simulator with the
// Cori KNL/Aries cost model; "intranode" runs the full real pipeline with
// wall-clock timing on the host cores.
//
// -trace writes a Chrome trace_event JSON (load in Perfetto / about:tracing)
// and -metrics a per-rank metrics table (CSV, or JSON if the path ends in
// .json) for the LAST simulated run of the selected experiment — pick a
// single-run experiment or narrow -nodes to trace a specific configuration.
// -sample N keeps every Nth high-volume event (alignments, RPCs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gnbody/internal/expt"
	"gnbody/internal/prof"
	"gnbody/internal/stats"
	"gnbody/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (table1, fig3..fig13, intranode, dist, serve, assembly, ablations, placement, all)")
		scale30    = flag.Int("scale30", 0, "E. coli 30x scale divisor (default 8)")
		scale100   = flag.Int("scale100", 0, "E. coli 100x scale divisor (default 64)")
		scaleccs   = flag.Int("scaleccs", 0, "Human CCS scale divisor (default 256)")
		rpn        = flag.Int("rpn", 0, "simulated ranks per node (default 4)")
		nodesFlag  = flag.String("nodes", "", "comma-separated node counts (default per experiment)")
		seed       = flag.Int64("seed", 1, "workload and noise seed")
		cacheB     = flag.Int64("cache-budget", 0, "per-rank remote-read cache budget in bytes (0 disables, negative = unbounded)")
		nodeSize   = flag.Int("node-size", 0, "ranks per node for hierarchical collectives: dist experiment grouping, and node-aggregated alltoallv pricing in simulated runs (0/1 = flat)")
		intrascale = flag.Int("intrascale", 0, "intranode pipeline scale divisor (default 150)")
		distscale  = flag.Int("distscale", 0, "dist experiment pipeline scale divisor (default 300)")
		distranks  = flag.Int("distranks", 0, "dist experiment rank count (default 4)")
		disttrans  = flag.String("disttransport", "", "dist experiment fabric: loopback, tcp or both (default both)")
		servescale = flag.Int("servescale", 0, "serve experiment per-job scale divisor (default 600)")
		servejobs  = flag.Int("servejobs", 0, "serve experiment jobs per phase (default 4)")
		stagesFlag = flag.String("stages", "", "assembly experiment chain prefix: overlap, graph, reduce or contigs (default contigs)")
		asmGenome  = flag.Int("asm-genome", 0, "assembly experiment genome length in bp (default 30000)")
		csvDir     = flag.String("csv", "", "also write each experiment's table as CSV into this directory")
		jsonDir    = flag.String("json", "", "also write each experiment's table as JSON into this directory")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON of the last simulated run")
		metricsOut = flag.String("metrics", "", "write per-rank metrics of the last simulated run (CSV, or JSON if path ends in .json)")
		sample     = flag.Int("sample", 1, "trace sampling: keep every Nth high-volume event")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
		}
	}()

	p := expt.Params{
		ScaleEColi30x:  *scale30,
		ScaleEColi100x: *scale100,
		ScaleHumanCCS:  *scaleccs,
		RanksPerNode:   *rpn,
		Seed:           *seed,
		CacheBudget:    *cacheB,
		NodeSize:       *nodeSize,
	}
	if *nodesFlag != "" {
		for _, part := range strings.Split(*nodesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "scaling: bad -nodes entry %q\n", part)
				os.Exit(2)
			}
			p.Nodes = append(p.Nodes, n)
		}
	}
	if *traceOut != "" || *metricsOut != "" {
		p.NewTracer = func(ranks int) *trace.Tracer {
			return trace.New(ranks, trace.Config{Sample: *sample})
		}
	}

	// Every runner yields the rendered table plus the rows behind it (nil
	// for experiments without simulated rows); the trace exporters consume
	// the last traced row.
	type runner func() (*stats.Table, []*expt.Row, error)
	wrapM := func(f func(expt.Params) (*stats.Table, map[expt.Mode][]*expt.Row, error)) runner {
		return func() (*stats.Table, []*expt.Row, error) {
			t, byMode, err := f(p)
			var rows []*expt.Row
			for _, m := range []expt.Mode{expt.BSP, expt.Async, expt.AsyncSteal} {
				rows = append(rows, byMode[m]...)
			}
			return t, rows, err
		}
	}
	experiments := []struct {
		id  string
		run runner
	}{
		{"table1", func() (*stats.Table, []*expt.Row, error) { t, _, err := expt.Table1(p); return t, nil, err }},
		{"fig3", func() (*stats.Table, []*expt.Row, error) { return expt.Fig3(p) }},
		{"fig4", func() (*stats.Table, []*expt.Row, error) { return expt.Fig4(p) }},
		{"fig5", func() (*stats.Table, []*expt.Row, error) { return expt.Fig5(p) }},
		{"fig6", func() (*stats.Table, []*expt.Row, error) { return expt.Fig6(p) }},
		{"fig7", wrapM(expt.Fig7)},
		{"fig8", wrapM(expt.Fig8)},
		{"fig9", wrapM(expt.Fig9)},
		{"fig10", wrapM(expt.Fig10)},
		{"fig11", wrapM(expt.Fig11)},
		{"fig12", wrapM(expt.Fig12)},
		{"fig13", wrapM(expt.Fig13)},
		{"intranode", func() (*stats.Table, []*expt.Row, error) {
			t, _, err := expt.Intranode(expt.IntranodeParams{Scale: *intrascale, Seed: *seed,
				CacheBudget: *cacheB})
			return t, nil, err
		}},
		{"dist", func() (*stats.Table, []*expt.Row, error) {
			t, _, err := expt.Dist(expt.DistParams{Scale: *distscale, Ranks: *distranks,
				Transport: *disttrans, Seed: *seed,
				CacheBudget: *cacheB, NodeSize: *nodeSize})
			return t, nil, err
		}},
		{"serve", func() (*stats.Table, []*expt.Row, error) {
			t, _, err := expt.Serve(expt.ServeParams{Scale: *servescale,
				Jobs: *servejobs, Seed: *seed})
			return t, nil, err
		}},
		{"assembly", func() (*stats.Table, []*expt.Row, error) {
			t, err := expt.Assembly(expt.AssemblyParams{
				GenomeLen: *asmGenome, Stages: *stagesFlag,
				Nodes: p.Nodes, RPN: *rpn, Seed: *seed})
			return t, nil, err
		}},
		{"placement", func() (*stats.Table, []*expt.Row, error) {
			t, err := expt.PlacementSweep(p)
			return t, nil, err
		}},
		{"ablations", func() (*stats.Table, []*expt.Row, error) {
			var rows []*expt.Row
			t1, r1, err := expt.AblationOutstanding(p, nil)
			if err != nil {
				return nil, nil, err
			}
			t1.Render(os.Stdout)
			fmt.Println()
			rows = append(rows, r1...)
			t2, r2, err := expt.AblationAggregation(p, nil)
			if err != nil {
				return nil, nil, err
			}
			t2.Render(os.Stdout)
			fmt.Println()
			rows = append(rows, r2...)
			t3, m3, err := expt.AblationNetwork(p)
			if err != nil {
				return nil, nil, err
			}
			t3.Render(os.Stdout)
			fmt.Println()
			for _, m := range []expt.Mode{expt.BSP, expt.Async} {
				rows = append(rows, m3[m]...)
			}
			t4, r4, err := expt.AblationFetchBatch(p, nil)
			if err != nil {
				return nil, nil, err
			}
			t4.Render(os.Stdout)
			fmt.Println()
			rows = append(rows, r4...)
			t5, m5, err := expt.AblationDynamicBalance(p)
			if err != nil {
				return nil, nil, err
			}
			for _, m := range []expt.Mode{expt.Async, expt.AsyncSteal} {
				rows = append(rows, m5[m]...)
			}
			return t5, rows, nil
		}},
	}

	writeTable := func(dir, name string, render func(io.Writer) error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
			os.Exit(1)
		}
		if err := render(f); err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	var traced *expt.Row // last traced run across selected experiments
	ran := false
	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.id {
			continue
		}
		ran = true
		t0 := time.Now()
		table, rows, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
		if *csvDir != "" {
			writeTable(*csvDir, e.id+".csv", table.RenderCSV)
		}
		if *jsonDir != "" {
			writeTable(*jsonDir, e.id+".json", table.RenderJSON)
		}
		for _, r := range rows {
			if r != nil && r.Trace != nil {
				traced = r
			}
		}
		fmt.Printf("  [%s completed in %s]\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "scaling: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	if (*traceOut != "" || *metricsOut != "") && traced == nil {
		fmt.Fprintf(os.Stderr, "scaling: -trace/-metrics: the selected experiment produced no simulated runs\n")
		os.Exit(1)
	}
	if *traceOut != "" {
		label := fmt.Sprintf("%s %s nodes=%d ranks=%d", traced.Workload, traced.Mode, traced.Nodes, traced.Ranks)
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteChromeTrace(f, traced.Trace, label)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [trace of %s -> %s]\n", label, *traceOut)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			if strings.HasSuffix(*metricsOut, ".json") {
				err = trace.WriteMetricsJSON(f, traced.TraceRows)
			} else {
				err = trace.WriteMetricsCSV(f, traced.TraceRows)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: -metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [metrics of %s %s nodes=%d -> %s]\n", traced.Workload, traced.Mode, traced.Nodes, *metricsOut)
	}
}

// Command scaling reproduces the paper's tables and figures.
//
// Each experiment prints a fixed-width table whose rows correspond to the
// paper's plotted series; EXPERIMENTS.md records the paper-vs-measured
// comparison for every one.
//
// Usage:
//
//	scaling -experiment table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|intranode|all
//	        [-scale30 N] [-scale100 N] [-scaleccs N]   workload scale divisors
//	        [-rpn N]                                   simulated ranks per node
//	        [-nodes 8,16,32]                           node counts for sweeps
//	        [-seed N]
//
// Multinode experiments run under the discrete-event simulator with the
// Cori KNL/Aries cost model; "intranode" runs the full real pipeline with
// wall-clock timing on the host cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gnbody/internal/expt"
	"gnbody/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (table1, fig3..fig13, intranode, ablations, all)")
		scale30    = flag.Int("scale30", 0, "E. coli 30x scale divisor (default 8)")
		scale100   = flag.Int("scale100", 0, "E. coli 100x scale divisor (default 64)")
		scaleccs   = flag.Int("scaleccs", 0, "Human CCS scale divisor (default 256)")
		rpn        = flag.Int("rpn", 0, "simulated ranks per node (default 4)")
		nodesFlag  = flag.String("nodes", "", "comma-separated node counts (default per experiment)")
		seed       = flag.Int64("seed", 1, "workload and noise seed")
		intrascale = flag.Int("intrascale", 0, "intranode pipeline scale divisor (default 150)")
		csvDir     = flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	)
	flag.Parse()

	p := expt.Params{
		ScaleEColi30x:  *scale30,
		ScaleEColi100x: *scale100,
		ScaleHumanCCS:  *scaleccs,
		RanksPerNode:   *rpn,
		Seed:           *seed,
	}
	if *nodesFlag != "" {
		for _, part := range strings.Split(*nodesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "scaling: bad -nodes entry %q\n", part)
				os.Exit(2)
			}
			p.Nodes = append(p.Nodes, n)
		}
	}

	type runner func() (*stats.Table, error)
	wrap2 := func(f func(expt.Params) (*stats.Table, []*expt.Row, error)) runner {
		return func() (*stats.Table, error) { t, _, err := f(p); return t, err }
	}
	wrapM := func(f func(expt.Params) (*stats.Table, map[expt.Mode][]*expt.Row, error)) runner {
		return func() (*stats.Table, error) { t, _, err := f(p); return t, err }
	}
	experiments := []struct {
		id  string
		run runner
	}{
		{"table1", func() (*stats.Table, error) { t, _, err := expt.Table1(p); return t, err }},
		{"fig3", wrap2(expt.Fig3)},
		{"fig4", wrap2(expt.Fig4)},
		{"fig5", wrap2(expt.Fig5)},
		{"fig6", wrap2(expt.Fig6)},
		{"fig7", wrapM(expt.Fig7)},
		{"fig8", wrapM(expt.Fig8)},
		{"fig9", wrapM(expt.Fig9)},
		{"fig10", wrapM(expt.Fig10)},
		{"fig11", wrapM(expt.Fig11)},
		{"fig12", wrapM(expt.Fig12)},
		{"fig13", wrapM(expt.Fig13)},
		{"intranode", func() (*stats.Table, error) {
			t, _, err := expt.Intranode(expt.IntranodeParams{Scale: *intrascale, Seed: *seed})
			return t, err
		}},
		{"ablations", func() (*stats.Table, error) {
			t1, _, err := expt.AblationOutstanding(p, nil)
			if err != nil {
				return nil, err
			}
			t1.Render(os.Stdout)
			fmt.Println()
			t2, _, err := expt.AblationAggregation(p, nil)
			if err != nil {
				return nil, err
			}
			t2.Render(os.Stdout)
			fmt.Println()
			t3, _, err := expt.AblationNetwork(p)
			if err != nil {
				return nil, err
			}
			t3.Render(os.Stdout)
			fmt.Println()
			t4, _, err := expt.AblationFetchBatch(p, nil)
			if err != nil {
				return nil, err
			}
			t4.Render(os.Stdout)
			fmt.Println()
			t5, _, err := expt.AblationDynamicBalance(p)
			return t5, err
		}},
	}

	ran := false
	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.id {
			continue
		}
		ran = true
		t0 := time.Now()
		table, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, e.id+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
				os.Exit(1)
			}
			if err := table.RenderCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Printf("  [%s completed in %s]\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "scaling: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

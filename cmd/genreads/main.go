// Command genreads generates synthetic long-read datasets: a random genome
// sampled at a configurable coverage through a configurable sequencer error
// model (substitutions, insertions, deletions, 'N' calls — §2's error
// taxonomy). Output is FASTA on stdout or -out; read names encode the true
// genomic interval (read<i>_<start>_<end><strand>) so downstream tools can
// validate overlap sensitivity against ground truth.
//
// -layout additionally writes the ground-truth layout as TSV — one
// "read\tstart\tend\tstrand" line per read, in read-id order — the input
// assembly validators diff contigs and string graphs against.
//
// Usage:
//
//	genreads -genome 4600000 -coverage 30 -meanlen 8000 -error 0.15 \
//	         -sigma 0.35 -both -seed 1 -out reads.fa -layout layout.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"gnbody/internal/genome"
	"gnbody/internal/seq"
)

func main() {
	var (
		genomeLen = flag.Int("genome", 1000000, "genome length in bp")
		coverage  = flag.Float64("coverage", 30, "sequencing depth")
		meanLen   = flag.Int("meanlen", 8000, "mean read length")
		sigma     = flag.Float64("sigma", 0.35, "log-normal read-length shape (0 = fixed length)")
		errRate   = flag.Float64("error", 0.15, "total per-base error rate")
		both      = flag.Bool("both", false, "sample reverse-complement reads too")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		repeats   = flag.Int("repeats", 0, "number of 300bp repeat copies to inject")
		out       = flag.String("out", "", "output FASTA path (default stdout)")
		layout    = flag.String("layout", "", "also write the ground-truth layout TSV (read, genome start/end, strand) to this path")
	)
	flag.Parse()

	g := genome.Generate(genome.Config{
		Length: *genomeLen, RepeatLen: 300, RepeatCopies: *repeats, Seed: *seed,
	})
	em := genome.ErrorModel{
		Substitution: *errRate * 0.4,
		Insertion:    *errRate * 0.35,
		Deletion:     *errRate * 0.22,
		NRate:        *errRate * 0.03,
	}
	smp, err := genome.NewSampler(g, genome.ReadConfig{
		Coverage: *coverage, MeanLen: *meanLen, SigmaLog: *sigma,
		Errors: em, BothStrands: *both, Seed: *seed + 1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "genreads: %v\n", err)
		os.Exit(1)
	}
	reads, truth := smp.Sample()

	if *layout != "" {
		if err := writeLayout(*layout, reads, truth); err != nil {
			fmt.Fprintf(os.Stderr, "genreads: -layout: %v\n", err)
			os.Exit(1)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genreads: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := seq.WriteFASTA(w, reads, 80); err != nil {
		fmt.Fprintf(os.Stderr, "genreads: %v\n", err)
		os.Exit(1)
	}
	st := reads.ComputeStats()
	fmt.Fprintf(os.Stderr, "genreads: %s\n", st)
}

// writeLayout emits the ground-truth layout TSV: where on the genome each
// read was sampled and on which strand. [start, end) is the genomic
// interval before sequencing errors; a '-' strand read is the reverse
// complement of that interval.
func writeLayout(path string, reads *seq.ReadSet, truth []genome.SampledRead) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := fmt.Fprintln(w, "read\tstart\tend\tstrand"); err != nil {
		f.Close()
		return err
	}
	for i, tr := range truth {
		strand := "+"
		if tr.RC {
			strand = "-"
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%s\n",
			reads.Get(seq.ReadID(i)).Name, tr.Start, tr.End, strand); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

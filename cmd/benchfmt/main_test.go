package main

import (
	"strings"
	"testing"
)

const newOut = `goos: linux
goarch: amd64
pkg: gnbody/internal/align
BenchmarkSeedExtend1k-8     	   10000	    101500 ns/op	         0 B/op	       0 allocs/op	     25087 cells/op
BenchmarkSeedExtend1k-8     	   10000	     99000 ns/op	         0 B/op	       0 allocs/op	     25087 cells/op
BenchmarkSeedExtend1k-8     	   10000	    105000 ns/op	         0 B/op	       0 allocs/op	     25087 cells/op
BenchmarkSeedExtend10k-8    	    1000	    900000 ns/op	        90 B/op	       0 allocs/op	    248708 cells/op
PASS
ok  	gnbody/internal/align	2.3s
`

const oldOut = `BenchmarkSeedExtend1k-8     	    5000	    220000 ns/op	     17408 B/op	       6 allocs/op	     25087 cells/op
BenchmarkSeedExtend10k-8    	     500	   2400000 ns/op	    174592 B/op	       6 allocs/op	    248708 cells/op
`

func TestParseStripsSuffixAndKeepsOrder(t *testing.T) {
	s, err := parse(strings.NewReader(newOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.order) != 2 || s.order[0] != "SeedExtend1k" || s.order[1] != "SeedExtend10k" {
		t.Fatalf("order = %v", s.order)
	}
	if got := s.vals["SeedExtend1k"]["ns/op"]; len(got) != 3 {
		t.Fatalf("1k ns/op runs = %v", got)
	}
	if got := s.vals["SeedExtend10k"]["cells/op"]; len(got) != 1 || got[0] != 248708 {
		t.Fatalf("10k cells/op = %v", got)
	}
}

func TestSummarizeMedian(t *testing.T) {
	st := summarize([]float64{105000, 99000, 101500})
	if st.Median != 101500 || st.Min != 99000 || st.Max != 105000 || st.N != 3 {
		t.Fatalf("summarize = %+v", st)
	}
	if even := summarize([]float64{10, 20}); even.Median != 15 {
		t.Fatalf("even median = %v", even.Median)
	}
}

func TestBuildDelta(t *testing.T) {
	cur, _ := parse(strings.NewReader(newOut))
	old, _ := parse(strings.NewReader(oldOut))
	rep := build(old, cur)
	c := rep.byName["SeedExtend1k"]["ns/op"]
	if c.Old == nil || c.Old.Median != 220000 {
		t.Fatalf("old stat = %+v", c.Old)
	}
	if c.DeltaPct == nil || *c.DeltaPct > -50 {
		t.Fatalf("1k delta = %v, want < -50%%", c.DeltaPct)
	}
	// allocs/op went 6 -> 0: delta is -100%.
	a := rep.byName["SeedExtend10k"]["allocs/op"]
	if a.DeltaPct == nil || *a.DeltaPct != -100 {
		t.Fatalf("allocs delta = %v", a.DeltaPct)
	}
	var sb strings.Builder
	rep.table(&sb, true)
	if !strings.Contains(sb.String(), "SeedExtend10k") || !strings.Contains(sb.String(), "-100.00%") {
		t.Fatalf("table missing rows:\n%s", sb.String())
	}
}

func TestGateFailures(t *testing.T) {
	// Old is faster than new for 1k (regression) once the roles are
	// swapped: parse newOut as the baseline and oldOut as the current run.
	cur, _ := parse(strings.NewReader(oldOut))
	old, _ := parse(strings.NewReader(newOut))
	rep := build(old, cur)
	fails := gateFailures(rep, 10, []string{"ns/op"})
	if len(fails) != 2 {
		t.Fatalf("gate failures = %v, want both benchmarks flagged", fails)
	}
	if !strings.Contains(fails[0], "SeedExtend1k") || !strings.Contains(fails[0], "ns/op") {
		t.Fatalf("failure line = %q", fails[0])
	}
	// A huge threshold passes everything.
	if fails := gateFailures(rep, 10000, []string{"ns/op"}); len(fails) != 0 {
		t.Fatalf("lenient gate still failed: %v", fails)
	}
	// Improvements never trip the gate.
	if fails := gateFailures(build(parseStr(t, oldOut), parseStr(t, newOut)), 10, []string{"ns/op"}); len(fails) != 0 {
		t.Fatalf("improvement tripped the gate: %v", fails)
	}
	// Without a baseline there is nothing to gate against.
	if fails := gateFailures(build(nil, cur), 10, []string{"ns/op"}); len(fails) != 0 {
		t.Fatalf("baseline-free gate failed: %v", fails)
	}
}

func TestGateUnits(t *testing.T) {
	// oldOut-as-current regresses B/op massively alongside ns/op (1k's
	// zero-byte baseline yields no delta, so only 10k is flaggable).
	// Only the listed units are enforced.
	rep := build(parseStr(t, newOut), parseStr(t, oldOut))
	fails := gateFailures(rep, 10, []string{"B/op"})
	if len(fails) != 1 || !strings.Contains(fails[0], "SeedExtend10k") {
		t.Fatalf("B/op-gated failures = %v, want just SeedExtend10k", fails)
	}
	if strings.Contains(fails[0], "ns/op") {
		t.Fatalf("unlisted unit enforced: %q", fails[0])
	}
	if fails := gateFailures(rep, 10, []string{"interbytes/op"}); len(fails) != 0 {
		t.Fatalf("absent unit produced failures: %v", fails)
	}
	both := gateFailures(rep, 10, []string{"ns/op", "B/op"})
	if len(both) != 3 {
		t.Fatalf("two-unit gate = %v, want 3 failures", both)
	}
}

func parseStr(t *testing.T, s string) *suite {
	t.Helper()
	out, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuildWithoutBaseline(t *testing.T) {
	cur, _ := parse(strings.NewReader(newOut))
	rep := build(nil, cur)
	if c := rep.byName["SeedExtend1k"]["ns/op"]; c.Old != nil || c.DeltaPct != nil {
		t.Fatalf("no-baseline cell has old data: %+v", c)
	}
	var sb strings.Builder
	rep.table(&sb, false)
	if !strings.Contains(sb.String(), "(99000..105000)") {
		t.Fatalf("spread missing:\n%s", sb.String())
	}
}

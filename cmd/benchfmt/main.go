// Command benchfmt turns raw `go test -bench` output into a benchstat-style
// before/after table and a machine-readable JSON record, with no external
// tooling. It understands repeated runs (-count N): per benchmark and unit it
// reports the median with the min..max spread, and when a baseline file is
// given (-old) it adds the relative delta of the medians.
//
// Usage:
//
//	go test -bench . -benchmem -count 5 ./internal/align/ > new.txt
//	go run ./cmd/benchfmt -old bench_baseline.txt -json BENCH_5.json new.txt
//
// With no file argument the new results are read from stdin, so the tool can
// sit at the end of a pipe.
//
// -gate PCT turns the comparison into a CI check: the process exits
// non-zero when any gated unit's median regresses by more than PCT percent
// against the -old baseline (benchmarks new in this run pass). -gateunits
// selects which units are enforced — "ns/op" by default; communication
// gates list byte counters instead, e.g. -gateunits interbytes/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// suite holds parsed benchmark results: per benchmark name (GOMAXPROCS
// suffix stripped), per unit, the values of every run in file order.
type suite struct {
	order []string // benchmark names in first-appearance order
	units []string // units in first-appearance order
	vals  map[string]map[string][]float64
}

func newSuite() *suite {
	return &suite{vals: make(map[string]map[string][]float64)}
}

func (s *suite) add(name, unit string, v float64) {
	m, ok := s.vals[name]
	if !ok {
		m = make(map[string][]float64)
		s.vals[name] = m
		s.order = append(s.order, name)
	}
	if _, ok := m[unit]; !ok {
		found := false
		for _, u := range s.units {
			if u == unit {
				found = true
				break
			}
		}
		if !found {
			s.units = append(s.units, unit)
		}
	}
	m[unit] = append(m[unit], v)
}

// parse reads `go test -bench` output. Lines that are not benchmark result
// lines (headers, PASS, ok, log output) are ignored.
func parse(r io.Reader) (*suite, error) {
	s := newSuite()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		// f[1] is the iteration count; then (value, unit) pairs follow.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q on line %q", f[i], sc.Text())
			}
			s.add(name, f[i+1], v)
		}
	}
	return s, sc.Err()
}

// stat summarises one benchmark/unit sample set.
type stat struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

func summarize(vals []float64) stat {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	med := sorted[n/2]
	if n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return stat{N: n, Min: sorted[0], Median: med, Max: sorted[n-1]}
}

// cell is the JSON record for one benchmark × unit comparison.
type cell struct {
	Old      *stat    `json:"old,omitempty"`
	New      stat     `json:"new"`
	DeltaPct *float64 `json:"delta_pct,omitempty"`
}

type report struct {
	Units      []string                   `json:"units"`
	Benchmarks []map[string]any           `json:"benchmarks"`
	byName     map[string]map[string]cell `json:"-"`
}

func build(old, cur *suite) *report {
	rep := &report{Units: cur.units, byName: make(map[string]map[string]cell)}
	for _, name := range cur.order {
		row := map[string]any{"name": name}
		cells := make(map[string]cell)
		for _, unit := range cur.units {
			vals, ok := cur.vals[name][unit]
			if !ok {
				continue
			}
			c := cell{New: summarize(vals)}
			if old != nil {
				if ovals, ok := old.vals[name][unit]; ok {
					os := summarize(ovals)
					c.Old = &os
					if os.Median != 0 {
						d := (c.New.Median - os.Median) / os.Median * 100
						c.DeltaPct = &d
					}
				}
			}
			cells[unit] = c
			row[unit] = c
		}
		rep.byName[name] = cells
		rep.Benchmarks = append(rep.Benchmarks, row)
	}
	return rep
}

// fmtVal renders a value compactly: integers stay integral, large numbers
// keep their magnitude readable without scientific notation.
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

func (r *report) table(w io.Writer, withOld bool) {
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	for _, unit := range r.Units {
		any := false
		for _, name := range namesOf(r) {
			if _, ok := r.byName[name][unit]; ok {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		if withOld {
			fmt.Fprintf(tw, "%-28s %16s %16s %9s\n", "name", "old "+unit, "new "+unit, "delta")
		} else {
			fmt.Fprintf(tw, "%-28s %16s %19s\n", "name", unit, "(min..max)")
		}
		for _, name := range namesOf(r) {
			c, ok := r.byName[name][unit]
			if !ok {
				continue
			}
			if withOld {
				oldS, delta := "-", "-"
				if c.Old != nil {
					oldS = fmtVal(c.Old.Median)
				}
				if c.DeltaPct != nil {
					delta = fmt.Sprintf("%+.2f%%", *c.DeltaPct)
				}
				fmt.Fprintf(tw, "%-28s %16s %16s %9s\n", name, oldS, fmtVal(c.New.Median), delta)
			} else {
				spread := fmt.Sprintf("(%s..%s)", fmtVal(c.New.Min), fmtVal(c.New.Max))
				fmt.Fprintf(tw, "%-28s %16s %19s\n", name, fmtVal(c.New.Median), spread)
			}
		}
		fmt.Fprintln(tw)
	}
}

// gateFailures returns one line per benchmark × gated unit whose median
// regressed (grew) by more than pct relative to the baseline. Benchmarks
// without a baseline entry pass (new benchmarks must not fail the gate on
// their first run); units not listed in gated are reported but not
// enforced. All gated units share the bigger-is-worse convention — time,
// allocations and byte counters alike.
func gateFailures(r *report, pct float64, gated []string) []string {
	var fails []string
	for _, name := range namesOf(r) {
		for _, unit := range gated {
			c, ok := r.byName[name][unit]
			if !ok || c.DeltaPct == nil {
				continue
			}
			if *c.DeltaPct > pct {
				fails = append(fails, fmt.Sprintf("%s: %s %+.2f%% (gate %+.2f%%)", name, unit, *c.DeltaPct, pct))
			}
		}
	}
	return fails
}

func namesOf(r *report) []string {
	names := make([]string, 0, len(r.Benchmarks))
	for _, row := range r.Benchmarks {
		names = append(names, row["name"].(string))
	}
	return names
}

func parseFile(path string) (*suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output to compare against")
	jsonPath := flag.String("json", "", "write the structured comparison as JSON to this file")
	gatePct := flag.Float64("gate", 0, "exit non-zero if any gated unit's median regresses more than this `percent` vs -old (0 disables)")
	gateUnits := flag.String("gateunits", "ns/op", "comma-separated `units` the -gate enforces (bigger is worse for all of them); other units are reported but not gated")
	flag.Parse()

	var cur *suite
	var err error
	switch flag.NArg() {
	case 0:
		cur, err = parse(os.Stdin)
	case 1:
		cur, err = parseFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "benchfmt: at most one input file (or stdin)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
		os.Exit(1)
	}
	if len(cur.order) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark results in input")
		os.Exit(1)
	}

	var old *suite
	if *oldPath != "" {
		if old, err = parseFile(*oldPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: -old: %v\n", err)
			os.Exit(1)
		}
	}

	rep := build(old, cur)
	rep.table(os.Stdout, old != nil)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: -json: %v\n", err)
			os.Exit(1)
		}
	}

	if *gatePct > 0 && old != nil {
		var gated []string
		for _, u := range strings.Split(*gateUnits, ",") {
			if u = strings.TrimSpace(u); u != "" {
				gated = append(gated, u)
			}
		}
		if fails := gateFailures(rep, *gatePct, gated); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "benchfmt: gate: %s\n", f)
			}
			os.Exit(1)
		}
	}
}

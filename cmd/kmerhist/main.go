// Command kmerhist computes the canonical k-mer frequency spectrum of a
// read set and reports the BELLA reliable-k-mer window for given coverage
// and error-rate assumptions — the stage-2 analysis that decides which
// seeds survive (paper §2-3).
//
// Usage:
//
//	kmerhist -in reads.fa -k 17 [-coverage 30 -error 0.15] [-max 50]
//
// Output: one line per frequency — frequency, #distinct k-mers, and
// whether that frequency falls inside the reliable window.
package main

import (
	"flag"
	"fmt"
	"os"

	"gnbody/internal/kmer"
	"gnbody/internal/seq"
	"gnbody/internal/stats"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTA/FASTQ (required)")
		k        = flag.Int("k", 17, "k-mer length")
		coverage = flag.Float64("coverage", 30, "sequencing depth for the BELLA window")
		errRate  = flag.Float64("error", 0.15, "per-base error rate for the BELLA window")
		maxFreq  = flag.Int("max", 50, "highest frequency row to print")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "kmerhist: -in is required")
		os.Exit(2)
	}
	reads, err := seq.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmerhist: %v\n", err)
		os.Exit(1)
	}
	hist, err := kmer.CountSet(reads, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmerhist: %v\n", err)
		os.Exit(1)
	}
	lo, hi := kmer.ReliableWindow(*coverage, *errRate, *k, 0)

	var distinct, instances, retained int64
	for _, n := range hist {
		distinct++
		instances += int64(n)
		if n >= lo && n <= hi {
			retained++
		}
	}
	fmt.Printf("# %s: %s\n", *in, reads.ComputeStats())
	fmt.Printf("# k=%d distinct=%s instances=%s\n", *k, stats.FmtCount(distinct), stats.FmtCount(instances))
	fmt.Printf("# BELLA reliable window (d=%.0f, e=%.2f): [%d, %d] — %s k-mers retained (%s)\n",
		*coverage, *errRate, lo, hi, stats.FmtCount(retained),
		stats.FmtPct(float64(retained)/float64(max64(distinct, 1))))
	fmt.Printf("#freq\tkmers\treliable\n")
	for _, row := range kmer.Spectrum(hist) {
		if row[0] > *maxFreq {
			break
		}
		mark := ""
		if row[0] >= lo && row[0] <= hi {
			mark = "*"
		}
		fmt.Printf("%d\t%d\t%s\n", row[0], row[1], mark)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

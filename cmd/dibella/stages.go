// The -stages flag extends dibella past overlap detection into the
// assembly chain: "overlap" is the historical pipeline, and each further
// name runs every stage up to and including itself —
//
//	overlap  discover + align                 (hit TSV, the default)
//	graph    + string-graph construction      (edge TSV)
//	reduce   + transitive reduction           (edge TSV of the reduced graph)
//	contigs  + contig generation              (FASTA)
//
// The whole chain executes as one collective region under
// pipeline.RunStages on every backend dibella has (-procs goroutines or
// -dist processes), with per-stage metric deltas exported through
// -stage-metrics.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"gnbody/internal/graph"
	"gnbody/internal/pipeline"
	"gnbody/internal/rt"
	"gnbody/internal/seq"
	"gnbody/internal/stats"
	"gnbody/internal/trace"
)

// stageChain is the -stages vocabulary in chain order.
var stageChain = []string{"overlap", "graph", "reduce", "contigs"}

// stageChainIndex returns how many assembly stages follow the align stage
// for a -stages value (0 for "overlap"), or -1 for an unknown name.
func stageChainIndex(name string) int {
	for i, s := range stageChain {
		if s == name {
			return i
		}
	}
	return -1
}

// stagedConfig carries the slice of main's state the staged path needs.
// The plan re-derives the same size-balanced partition main's stores were
// built over (partition.BySize is a pure function of lens and ranks).
type stagedConfig struct {
	world    backendWorld
	lens     []int32
	storeFor func(rt.Runtime) seq.Store
	nameOf   func(seq.ReadID) string
	logf     func(string, ...any)

	procs  int
	isDist bool
	myRank int

	stages   string // -stages value, validated ("graph", "reduce" or "contigs")
	mode     string // "bsp", "async" or "steal"
	k        int
	lo, hi   int // explicit window bounds (0 = BELLA model)
	coverage float64
	errRate  float64
	x        int
	minScore int
	packed   bool
	cacheB   int64
	noBatch  bool
	slack    int
	minOv    int
	fuzz     int

	outPath      string
	stageMetrics string
}

// runStagedAssembly executes the staged pipeline and writes the final
// stage's artifact (edge TSV or contig FASTA) plus the optional per-stage
// metrics file. Rank 0 (or the sole process) owns the artifact; every
// -dist worker writes its own rank-suffixed metrics slice.
func runStagedAssembly(c *stagedConfig) error {
	plan, err := pipeline.NewPlan(c.lens, c.procs, pipeline.Spec{
		K: c.k, Lo: c.lo, Hi: c.hi, Coverage: c.coverage, ErrRate: c.errRate,
	})
	if err != nil {
		return err
	}
	// The reduce stage's neighbour fetches follow the align phase's
	// coordination strategy; stealing is an align-only concept.
	reduceMode := "bsp"
	if c.mode != "bsp" {
		reduceMode = "async"
	}
	n := stageChainIndex(c.stages)
	plan.Stages = []pipeline.Stage{
		pipeline.DiscoverStage{},
		pipeline.AlignStage{Mode: c.mode, MinScore: c.minScore, X: c.x,
			Packed: c.packed, CacheBudget: c.cacheB, NoBatch: c.noBatch},
	}
	plan.Stages = append(plan.Stages, graph.AssemblyStages(c.slack, c.minOv, c.fuzz, reduceMode, nil)[:n]...)

	t0 := time.Now()
	runs := make([]*pipeline.StageRun, c.procs)
	errs := make([]error, c.procs)
	var (
		edges     []graph.Edge
		contained []bool
		contigs   []graph.Contig
		gatherErr error
	)
	runErr := c.world.Run(func(r rt.Runtime) {
		rk := r.Rank()
		run, perr := plan.RunStages(r, c.storeFor(r), nil)
		runs[rk], errs[rk] = run, perr
		if perr != nil {
			return // the abort agreement failed every rank; no one gathers
		}
		switch out := run.Out.(type) {
		case *graph.Graph:
			es, gerr := graph.GatherEdges(r, out.EdgeList())
			if rk == 0 {
				edges, contained, gatherErr = es, out.Contained, gerr
			}
		case []graph.Contig:
			cs, gerr := graph.GatherContigs(r, out)
			if rk == 0 {
				contigs, gatherErr = cs, gerr
			}
		}
	})
	if runErr != nil {
		return runErr
	}
	// Prefer the instigating rank's root cause over peers' abort reports.
	var abort error
	for rk, rerr := range errs {
		var se *pipeline.StageError
		if errors.As(rerr, &se) && se.Err != nil {
			return fmt.Errorf("rank %d: %w", rk, rerr)
		}
		if rerr != nil && abort == nil {
			abort = fmt.Errorf("rank %d: %w", rk, rerr)
		}
	}
	if abort != nil {
		return abort
	}
	if gatherErr != nil {
		return gatherErr
	}
	wall := time.Since(t0)

	if err := writeStageMetrics(c, runs); err != nil {
		return err
	}

	if c.isDist && c.myRank != 0 {
		return nil
	}
	w := bufio.NewWriter(os.Stdout)
	if c.outPath != "" {
		f, err := os.Create(c.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	switch c.stages {
	case "graph", "reduce":
		if err := graph.WriteEdgeTSV(w, edges, contained, c.nameOf); err != nil {
			return err
		}
		c.logf("dibella: %s stage: %d edges, %d contained reads\n",
			c.stages, len(edges), countTrue(contained))
	case "contigs":
		if err := graph.WriteContigFASTA(w, contigs); err != nil {
			return err
		}
		var bases int
		for _, ct := range contigs {
			bases += len(ct.Seq)
		}
		c.logf("dibella: %d contigs, %d bases\n", len(contigs), bases)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	renderStageTable(c, runs, wall)
	return nil
}

// writeStageMetrics exports the stage-tagged per-rank metric rows: one file
// with every rank's rows in-process, a rank-suffixed file with this rank's
// rows per -dist worker. Rows are stage-major so one stage's ranks read as
// a block.
func writeStageMetrics(c *stagedConfig, runs []*pipeline.StageRun) error {
	if c.stageMetrics == "" {
		return nil
	}
	path := c.stageMetrics
	var rows []trace.StageRow
	if c.isDist {
		path += fmt.Sprintf(".rank%d", c.myRank)
		rows = runs[c.myRank].Rows
	} else {
		for si := range runs[0].Rows {
			for rk := 0; rk < c.procs; rk++ {
				rows = append(rows, runs[rk].Rows[si])
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(c.stageMetrics, ".json") {
		err = trace.WriteStageMetricsJSON(f, rows)
	} else {
		err = trace.WriteStageMetricsCSV(f, rows)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("-stage-metrics: %w", err)
	}
	c.logf("dibella: stage metrics -> %s\n", path)
	return nil
}

// renderStageTable prints the per-stage runtime breakdown to stderr: all
// ranks in-process, this rank's slice per -dist worker.
func renderStageTable(c *stagedConfig, runs []*pipeline.StageRun, wall time.Duration) {
	table := &stats.Table{
		Title: fmt.Sprintf("dibella: %s through %s, %d ranks, %s",
			c.mode, c.stages, c.procs, wall.Round(time.Millisecond)),
		Headers: []string{"stage", "rank", "align", "overhead", "comm", "sync", "sent", "steps"},
	}
	addRow := func(row trace.StageRow) {
		table.AddRow(row.Stage, fmt.Sprint(row.Rank),
			stats.FmtDur(durSec(row.AlignSec)), stats.FmtDur(durSec(row.OverheadSec)),
			stats.FmtDur(durSec(row.CommSec)), stats.FmtDur(durSec(row.SyncSec)),
			stats.FmtBytes(row.BytesSent), fmt.Sprint(row.Supersteps))
	}
	if c.isDist {
		table.Title += fmt.Sprintf(" (rank %d of %d processes)", c.myRank, c.procs)
		for _, row := range runs[c.myRank].Rows {
			addRow(row)
		}
	} else {
		for si := range runs[0].Rows {
			for rk := 0; rk < c.procs; rk++ {
				addRow(runs[rk].Rows[si])
			}
		}
	}
	table.Render(os.Stderr)
}

func durSec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

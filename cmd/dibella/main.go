// Command dibella runs the full many-to-many long-read alignment pipeline
// on a FASTA/FASTQ input: size-uniform read partitioning, distributed-style
// k-mer histogram with BELLA-model reliable-k-mer filtering, candidate
// (task) discovery, task redistribution under the owner invariant, and the
// exchange-and-align phase under either coordination strategy:
//
//	-mode bsp    bulk-synchronous aggregated exchanges (§3.1)
//	-mode async  asynchronous pull RPCs with overlap (§3.2)
//
// Ranks are host goroutines (the real runtime); -procs sets how many.
// With -dist, ranks are separate OS processes connected by the TCP
// transport instead: `dibella -dist -procs 4 ...` self-forks 4 local worker
// processes that rendezvous on a free localhost port, run the identical
// pipeline over the message-passing backend, gather hits to rank 0, and
// write the same output. For multi-host launches start each worker by hand
// with explicit coordinates: `-dist -rank R -peers P -addr host:port`
// (rank 0's host listens on -addr).
//
// Output: one line per saved alignment — readA readB score — plus a
// per-rank runtime breakdown on stderr. -stages runs the pipeline past
// overlap detection into assembly (string graph, transitive reduction,
// contigs) and writes that stage's artifact instead; see stages.go.
//
// Usage:
//
//	dibella -in reads.fa -mode async -procs 8 -k 17 -x 15 -minscore 100 \
//	        [-coverage 30 -error 0.15 | -lofreq 2 -hifreq 40] [-mem BYTES] \
//	        [-stages graph|reduce|contigs [-stage-metrics FILE]] \
//	        [-dist [-rank R -peers P -addr HOST:PORT]]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gnbody/internal/align"
	"gnbody/internal/core"
	"gnbody/internal/dist"
	"gnbody/internal/kmer"
	"gnbody/internal/launch"
	"gnbody/internal/overlap"
	"gnbody/internal/par"
	"gnbody/internal/partition"
	"gnbody/internal/pipeline"
	"gnbody/internal/prof"
	"gnbody/internal/rt"
	"gnbody/internal/seq"
	"gnbody/internal/stats"
	"gnbody/internal/trace"
	"gnbody/internal/transport"
	"gnbody/internal/workload"
)

// backendWorld is the slice of the backend API dibella drives: par.World
// for the in-process runtime, distRankWorld for one rank of a -dist job.
type backendWorld interface {
	Run(func(rt.Runtime)) error
	Metrics(i int) *rt.Metrics
	ResetMetrics()
}

// distRankWorld adapts a single dist.Rank (this process's rank) to the
// backendWorld interface. Metrics is only meaningful for the local rank.
type distRankWorld struct{ r *dist.Rank }

func (d distRankWorld) Run(f func(rt.Runtime)) error { return d.r.Run(f) }
func (d distRankWorld) Metrics(i int) *rt.Metrics {
	if i != d.r.Rank() {
		panic(fmt.Sprintf("dibella: metrics for rank %d unavailable in process of rank %d", i, d.r.Rank()))
	}
	return d.r.Metrics()
}
func (d distRankWorld) ResetMetrics() { d.r.ResetMetrics() }

func main() {
	var (
		in       = flag.String("in", "", "input FASTA/FASTQ (required)")
		mode     = flag.String("mode", "bsp", "coordination strategy: bsp or async")
		procs    = flag.Int("procs", 4, "number of ranks (goroutines)")
		k        = flag.Int("k", 17, "k-mer length")
		x        = flag.Int("x", 15, "X-drop parameter")
		minScore = flag.Int("minscore", 100, "minimum alignment score to save")
		coverage = flag.Float64("coverage", 0, "sequencing depth for the BELLA filter window")
		errRate  = flag.Float64("error", 0.15, "error rate for the BELLA filter window")
		loFreq   = flag.Int("lofreq", 0, "explicit k-mer frequency lower bound (overrides BELLA model)")
		hiFreq   = flag.Int("hifreq", 0, "explicit k-mer frequency upper bound (overrides BELLA model)")
		mem      = flag.Int64("mem", 0, "per-rank exchange memory budget in bytes (0 = unlimited)")
		cacheB   = flag.Int64("cache-budget", 0, "per-rank remote-read cache budget in bytes (0 disables, negative = unbounded)")
		nodeSize = flag.Int("node-size", 0, "-dist: group this many consecutive ranks per node and aggregate collectives hierarchically (0/1 = flat)")
		placeStr = flag.String("placement", "", "-dist: rank→slot placement permutation: identity (default), reverse, or an explicit comma-separated slot list — regroups which ranks share a -node-size node (results are identical under any placement)")
		outPath  = flag.String("out", "", "output path (default stdout)")
		stages   = flag.String("stages", "overlap", "run the pipeline through this stage: overlap (hit TSV), graph (string-graph edge TSV), reduce (transitively reduced edge TSV) or contigs (FASTA); each includes all earlier stages")
		slack    = flag.Int("slack", 50, "assembly stages: tolerated unaligned overhang at read ends when classifying overlaps")
		minOv    = flag.Int("minoverlap", 100, "assembly stages: discard alignments spanning fewer bases on either read")
		fuzz     = flag.Int("fuzz", 0, "assembly stages: transitive-reduction length tolerance in bases")
		stageMet = flag.String("stage-metrics", "", "write per-stage per-rank metrics (CSV, or JSON if path ends in .json); needs -stages beyond overlap")
		paf      = flag.Bool("paf", false, "emit PAF records (with cg:Z cigar tags) instead of TSV")
		distrib  = flag.Bool("distributed", false, "run k-mer analysis and candidate discovery as a distributed SPMD stage (DiBELLA stages 1-2) instead of serially")
		steal    = flag.Bool("steal", false, "async mode with dynamic load balancing (work stealing)")
		noBatch  = flag.Bool("no-batch", false, "disable length-bucketed batch scheduling of alignment tasks (ablation; results are identical either way)")
		packed   = flag.Bool("packed", false, "2-bit-pack N-free reads on the wire (≈4x smaller exchanges)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the run (load in Perfetto)")
		metrics  = flag.String("metrics", "", "write per-rank metrics (CSV, or JSON if path ends in .json)")
		sample   = flag.Int("sample", 1, "trace sampling: keep every Nth high-volume event")
		distMode = flag.Bool("dist", false, "run ranks as separate OS processes over the TCP transport (self-forks -procs workers unless -rank is set)")
		rankFlag = flag.Int("rank", -1, "this worker's rank in a -dist job (set by the self-fork launcher, or by hand for multi-host runs)")
		peers    = flag.Int("peers", 0, "total rank count of a -dist job (defaults to -procs)")
		addr     = flag.String("addr", "", "rendezvous address host:port of rank 0 in a -dist job (auto-picked when self-forking)")
		deadline = flag.Duration("progress-deadline", dist.DefaultProgressDeadline,
			"-dist: fail a rank blocked in a collective with no inbound traffic for this long (0 disables)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file (rank-suffixed in -dist mode)")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit (rank-suffixed in -dist mode)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dibella: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *mode != "bsp" && *mode != "async" {
		fmt.Fprintf(os.Stderr, "dibella: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	if stageChainIndex(*stages) < 0 {
		fmt.Fprintf(os.Stderr, "dibella: unknown -stages %q (want overlap, graph, reduce or contigs)\n", *stages)
		os.Exit(2)
	}
	if *stages != "overlap" && *paf {
		fmt.Fprintln(os.Stderr, "dibella: -paf emits overlap records and needs -stages overlap")
		os.Exit(2)
	}
	if *stages == "overlap" && *stageMet != "" {
		fmt.Fprintln(os.Stderr, "dibella: -stage-metrics needs -stages graph, reduce or contigs")
		os.Exit(2)
	}

	isDist, myRank := *distMode, 0
	if isDist {
		if *paf {
			fail(fmt.Errorf("-paf needs every rank's task table and is not supported with -dist"))
		}
		if *peers <= 0 {
			*peers = *procs
		}
		*procs = *peers
		if *rankFlag < 0 {
			// Coordinator: pick a rendezvous port and re-exec one worker
			// process per rank with explicit coordinates appended (later
			// flags override the ones already on the command line).
			a := *addr
			if a == "" {
				var err error
				if a, err = launch.FreeLocalAddr(); err != nil {
					fail(err)
				}
			}
			base := append([]string{}, os.Args[1:]...)
			if err := launch.SelfFork(*peers, func(rank int) []string {
				return append(append([]string{}, base...),
					"-rank", fmt.Sprint(rank), "-peers", fmt.Sprint(*peers), "-addr", a)
			}); err != nil {
				fail(err)
			}
			return
		}
		if *rankFlag >= *peers {
			fail(fmt.Errorf("-rank %d out of range for -peers %d", *rankFlag, *peers))
		}
		if *addr == "" {
			fail(fmt.Errorf("a -dist worker needs -addr (rank 0's rendezvous address)"))
		}
		myRank = *rankFlag
	}
	// Placement regroups ranks across physical nodes, which only exists in
	// -dist mode; parse after -peers has fixed the final rank count.
	if *placeStr != "" && !isDist {
		fmt.Fprintln(os.Stderr, "dibella: -placement needs -dist (in-process ranks have no node topology)")
		os.Exit(2)
	}
	placement, perr := parsePlacement(*placeStr, *procs)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "dibella: -placement: %v\n", perr)
		os.Exit(2)
	}

	// Informational stderr output comes from one process only in -dist mode.
	logf := func(format string, args ...any) {
		if !isDist || myRank == 0 {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	// Profiling starts after the coordinator's self-fork return above, so in
	// -dist mode only the workers profile, each into a rank-suffixed file
	// (same convention as -trace and -metrics).
	cpuPath, memPath := *cpuProf, *memProf
	if isDist {
		if cpuPath != "" {
			cpuPath += fmt.Sprintf(".rank%d", myRank)
		}
		if memPath != "" {
			memPath += fmt.Sprintf(".rank%d", myRank)
		}
	}
	stopProf, profErr := prof.Start(cpuPath, memPath)
	if profErr != nil {
		fail(profErr)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "dibella: %v\n", err)
		}
	}()

	// Owner-only data residency: in -dist mode no process ever loads the
	// whole read set. Every worker scans the input once for metadata (the
	// per-record index: offsets, lengths, names — the replicated O(n)
	// exception), then seeks to and parses only its own partition range.
	// In-process mode loads the full set once and hands each rank an
	// enforcing owner-only view of it.
	t0 := time.Now()
	var (
		reads *seq.ReadSet   // in-process mode: the shared full set
		ix    *seq.FileIndex // -dist mode: replicated metadata only
		lens  []int32
		err   error
	)
	if isDist {
		if ix, err = seq.IndexFile(*in); err != nil {
			fail(err)
		}
		lens = ix.Lens
		logf("dibella: indexed %s in %s\n", seq.StatsFromLens(lens), time.Since(t0).Round(time.Millisecond))
	} else {
		if reads, err = seq.LoadFile(*in); err != nil {
			fail(err)
		}
		lens = workload.LensOf(reads)
		logf("dibella: loaded %s in %s\n", reads.ComputeStats(), time.Since(t0).Round(time.Millisecond))
	}

	lensInt := make([]int, len(lens))
	for i, l := range lens {
		lensInt[i] = int(l)
	}
	pt, err := partition.BySize(lensInt, *procs)
	if err != nil {
		fail(err)
	}
	var tracer *trace.Tracer
	if *traceOut != "" || *metrics != "" {
		tracer = trace.New(*procs, trace.Config{Sample: *sample})
	}
	var world backendWorld
	var distRank *dist.Rank
	if isDist {
		tp, err := transport.Rendezvous(myRank, *procs, transport.TCPConfig{
			Addr: *addr, Timeout: 60 * time.Second})
		if err != nil {
			fail(fmt.Errorf("rank %d rendezvous at %s: %w", myRank, *addr, err))
		}
		pd := *deadline
		if pd == 0 {
			pd = -1 // flag 0 means "disable"; dist.Config 0 means "default"
		}
		distRank = dist.NewRank(tp, dist.Config{
			MemBudget: *mem, Tracer: tracer, ProgressDeadline: pd,
			NodeSize: *nodeSize, Placement: placement})
		world = distRankWorld{distRank}
		// Graceful drain: a signal aborts the transport, so the collective
		// this rank is blocked in fails with a typed RankError instead of
		// the process dying mid-exchange — the failure path below then
		// flushes this rank's trace and metrics before exiting.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sigc
			fmt.Fprintf(os.Stderr, "dibella: rank %d: %v — draining (aborting transport)\n", myRank, s)
			if ab, ok := tp.(transport.Aborter); ok {
				ab.Abort()
			} else {
				tp.Close()
			}
		}()
	} else {
		pw, err := par.NewWorld(par.Config{P: *procs, MemBudget: *mem, Tracer: tracer})
		if err != nil {
			fail(err)
		}
		world = pw
	}

	// -dist: agree on the input (every worker indexed its own copy of the
	// file; one mismatched byte anywhere would silently skew the partition),
	// then materialise only this rank's partition range from disk.
	var myStore *seq.SliceStore
	if isDist {
		sum := ix.Checksum()
		var agreeErr error
		if err := world.Run(func(r rt.Runtime) {
			if r.Allreduce(sum, rt.OpMin) != r.Allreduce(sum, rt.OpMax) {
				agreeErr = fmt.Errorf("input index checksum %#x disagrees across ranks — workers see different files", uint64(sum))
			}
		}); err != nil {
			fail(err)
		}
		if agreeErr != nil {
			fail(agreeErr)
		}
		lo, hi := pt.Range(myRank)
		tl := time.Now()
		if myStore, err = seq.LoadFileRange(*in, ix, lo, hi); err != nil {
			fail(fmt.Errorf("rank %d loading reads [%d,%d): %w", myRank, lo, hi, err))
		}
		fmt.Fprintf(os.Stderr, "dibella: rank %d resident reads [%d,%d) = %s of %s global in %s\n",
			myRank, lo, hi, stats.FmtBytes(myStore.LocalBytes()),
			stats.FmtBytes(seq.StatsFromLens(lens).TotalBases), time.Since(tl).Round(time.Millisecond))
	}
	// Artifact flushing is an exit hook, not straight-line code at the end
	// of main: fail() exits without running defers, and the graceful drain
	// above deliberately routes through it, so a drained or failed run
	// still exports whatever trace and metrics it accumulated.
	var distMet rt.Metrics // align-phase snapshot (-dist), set before the hit gather
	distMetSet := false
	var flushOnce sync.Once
	flushArtifacts := func() {
		flushOnce.Do(func() {
			metricsFor := func(rk int) *rt.Metrics {
				if isDist {
					if distMetSet {
						return &distMet
					}
					return world.Metrics(myRank)
				}
				return world.Metrics(rk)
			}
			writeRunArtifacts(tracer, *traceOut, *metrics, *mode, isDist, myRank, *procs, metricsFor, logf)
		})
	}
	onExit(flushArtifacts)

	// storeFor hands a rank its owner-only view of the reads: the physical
	// per-rank slice in -dist mode, an enforcing scoped view of the shared
	// set in-process. Out-of-partition Gets panic in -dist workers and are
	// counted into the rank's metrics in-process.
	storeFor := func(r rt.Runtime) seq.Store {
		if isDist {
			return myStore
		}
		lo, hi := pt.Range(r.Rank())
		return seq.ScopeCounting(reads, lo, hi, lens, &r.Metrics().OOPGets)
	}
	// Names and lengths come from the replicated metadata in -dist mode;
	// rank 0 does not hold the other ranks' bases.
	nameOf := func(id seq.ReadID) string {
		if isDist {
			return ix.Names[id]
		}
		return reads.Get(id).Name
	}

	// -stages beyond overlap: run the whole assembly chain as one staged
	// collective region and write its artifact instead of the hit TSV.
	if *stages != "overlap" {
		modeStr := *mode
		if modeStr == "async" && *steal {
			modeStr = "steal"
		}
		if err := runStagedAssembly(&stagedConfig{
			world: world, lens: lens, storeFor: storeFor, nameOf: nameOf,
			logf: logf, procs: *procs, isDist: isDist, myRank: myRank,
			stages: *stages, mode: modeStr, k: *k, lo: *loFreq, hi: *hiFreq,
			coverage: *coverage, errRate: *errRate, x: *x, minScore: *minScore,
			packed: *packed, cacheB: *cacheB, noBatch: *noBatch, slack: *slack, minOv: *minOv,
			fuzz: *fuzz, outPath: *outPath, stageMetrics: *stageMet,
		}); err != nil {
			fail(err)
		}
		if distRank != nil {
			distRank.Close()
		}
		flushArtifacts()
		return
	}

	// Stage 1-2: k-mer analysis and candidate discovery — serial reference
	// path or the distributed SPMD pipeline. -dist always takes the SPMD
	// path: the serial one would need the global read set, which no worker
	// holds any more.
	t1 := time.Now()
	var tasks []overlap.Task
	var byRank [][]overlap.Task
	if isDist && !*distrib {
		logf("dibella: -dist task discovery runs the distributed pipeline (owner-only residency)\n")
	}
	if *distrib || isDist {
		lo, hi := *loFreq, *hiFreq
		if hi <= 0 {
			lo, hi = kmer.ReliableWindow(*coverage, *errRate, *k, 0)
			if *loFreq > 0 {
				lo = *loFreq
			}
		}
		outs := make([]*pipeline.Output, *procs)
		errs := make([]error, *procs)
		if err := world.Run(func(r rt.Runtime) {
			outs[r.Rank()], errs[r.Rank()] = pipeline.Run(r, &pipeline.Input{
				Part: pt, Store: storeFor(r), Lens: lens, K: *k, Lo: lo, Hi: hi,
			})
		}); err != nil {
			fail(err)
		}
		byRank = make([][]overlap.Task, *procs)
		if isDist {
			// Each process only knows (and only needs) its own rank's tasks;
			// report the global count via the runtime.
			if errs[myRank] != nil {
				fail(fmt.Errorf("pipeline rank %d: %w", myRank, errs[myRank]))
			}
			byRank[myRank] = outs[myRank].Tasks
			tasks = outs[myRank].Tasks
			var total int64
			if err := world.Run(func(r rt.Runtime) {
				total = r.Allreduce(int64(len(tasks)), rt.OpSum)
			}); err != nil {
				fail(err)
			}
			logf("dibella: %d candidate tasks (distributed, k=%d, window [%d,%d]) in %s\n",
				total, *k, lo, hi, time.Since(t1).Round(time.Millisecond))
		} else {
			for rk := 0; rk < *procs; rk++ {
				if errs[rk] != nil {
					fail(fmt.Errorf("pipeline rank %d: %w", rk, errs[rk]))
				}
				byRank[rk] = outs[rk].Tasks
				tasks = append(tasks, outs[rk].Tasks...)
			}
			logf("dibella: %d candidate tasks (distributed, k=%d, window [%d,%d]) in %s\n",
				len(tasks), *k, lo, hi, time.Since(t1).Round(time.Millisecond))
		}
		// The reported breakdown should cover the align phase alone, not the
		// k-mer pipeline that just ran.
		world.ResetMetrics()
	} else {
		var lo, hi int
		tasks, lo, hi, err = overlap.FromReadSet(reads, overlap.Config{
			K: *k, Lo: *loFreq, Hi: *hiFreq, Coverage: *coverage, ErrRate: *errRate,
		})
		if err != nil {
			fail(err)
		}
		byRank = partition.AssignTasks(tasks, pt)
		logf("dibella: %d candidate tasks (k=%d, reliable window [%d,%d]) in %s\n",
			len(tasks), *k, lo, hi, time.Since(t1).Round(time.Millisecond))
	}
	exec := core.RealExecutor{Scoring: align.DefaultScoring(), X: *x}
	results := make([]*core.Result, *procs)
	errs := make([]error, *procs)
	t2 := time.Now()
	runErr := world.Run(func(r rt.Runtime) {
		// The codec encodes from this rank's own store, so it is built
		// per rank inside the SPMD region.
		st := storeFor(r)
		var codec core.Codec = core.RealCodec{Store: st}
		if *packed {
			codec = core.PackedCodec{Store: st}
		}
		input := &core.Input{Part: pt, Lens: lens, Tasks: byRank[r.Rank()],
			Codec: codec, Store: st}
		cfg := core.Config{Exec: exec, MinScore: *minScore, CacheBudget: *cacheB, NoBatch: *noBatch}
		switch {
		case *mode == "async" && *steal:
			results[r.Rank()], errs[r.Rank()] = core.RunAsyncStealing(r, input, cfg)
		case *mode == "async":
			results[r.Rank()], errs[r.Rank()] = core.RunAsync(r, input, cfg)
		default:
			results[r.Rank()], errs[r.Rank()] = core.RunBSP(r, input, cfg)
		}
	})
	if runErr != nil {
		fail(runErr)
	}
	alignWall := time.Since(t2)
	var hits []core.Hit
	if isDist {
		if errs[myRank] != nil {
			fail(fmt.Errorf("rank %d: %w", myRank, errs[myRank]))
		}
		distMet = *world.Metrics(myRank)
		distMetSet = true
		if err := world.Run(func(r rt.Runtime) {
			hits = core.GatherHits(r, results[r.Rank()].Hits)
		}); err != nil {
			fail(err)
		}
		// Graceful departure: ranks finish the gather at different times,
		// and the bye handshake keeps our exit from looking like a crash
		// to peers still polling.
		distRank.Close()
	} else {
		for rk := 0; rk < *procs; rk++ {
			if errs[rk] != nil {
				fail(fmt.Errorf("rank %d: %w", rk, errs[rk]))
			}
			hits = append(hits, results[rk].Hits...)
		}
		core.SortHits(hits)
	}

	// Rank 0 (or the sole process) writes the results and the report;
	// -dist workers skip straight to their per-rank trace/metrics export.
	if !isDist || myRank == 0 {
		if !*paf {
			// Canonical TSV: symmetric duplicates collapse and every record
			// reads A < B, so the emitted file is a deterministic function of
			// the hit set regardless of driver, rank count or task order.
			// PAF keeps the raw per-task records — its seed replay needs the
			// original orientation.
			hits = core.CanonicalizeHits(hits, lens)
		}
		w := bufio.NewWriter(os.Stdout)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		kinds := map[overlap.Kind]int{}
		taskOf := make(map[uint64]overlap.Task, len(tasks))
		for _, t := range tasks {
			taskOf[t.Key()] = t
		}
		for _, h := range hits {
			res := align.Result{Score: int(h.Score),
				AStart: int(h.AStart), AEnd: int(h.AEnd),
				BStart: int(h.BStart), BEnd: int(h.BEnd)}
			kinds[overlap.Classify(res, int(lens[h.A]), int(lens[h.B]), 50)]++
			if !*paf {
				fmt.Fprintf(w, "%s\t%s\t%d\n", nameOf(h.A), nameOf(h.B), h.Score)
				continue
			}
			if err := writePAF(w, reads, taskOf[uint64(h.A)<<32|uint64(h.B)], h, *x); err != nil {
				fail(err)
			}
		}
		if err := w.Flush(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dibella: overlap kinds:")
		for _, k := range []overlap.Kind{overlap.SuffixPrefix, overlap.PrefixSuffix,
			overlap.ContainsB, overlap.ContainedInB, overlap.Internal} {
			fmt.Fprintf(os.Stderr, " %s=%d", k, kinds[k])
		}
		fmt.Fprintln(os.Stderr)

		table := &stats.Table{
			Title:   fmt.Sprintf("dibella: %s, %d ranks, %d hits, align phase %s", *mode, *procs, len(hits), alignWall.Round(time.Millisecond)),
			Headers: []string{"rank", "align", "overhead", "comm", "sync", "maxmem", "store", "steps"},
		}
		if isDist {
			m := &distMet
			table.Title += fmt.Sprintf(" (rank %d of %d processes)", myRank, *procs)
			table.AddRow(fmt.Sprint(myRank),
				stats.FmtDur(m.Time[rt.CatAlign]), stats.FmtDur(m.Time[rt.CatOverhead]),
				stats.FmtDur(m.Time[rt.CatComm]), stats.FmtDur(m.Time[rt.CatSync]),
				stats.FmtBytes(m.MaxMem), stats.FmtBytes(m.StoreBytes), fmt.Sprint(m.Supersteps))
		} else {
			for rk := 0; rk < *procs; rk++ {
				m := world.Metrics(rk)
				table.AddRow(fmt.Sprint(rk),
					stats.FmtDur(m.Time[rt.CatAlign]), stats.FmtDur(m.Time[rt.CatOverhead]),
					stats.FmtDur(m.Time[rt.CatComm]), stats.FmtDur(m.Time[rt.CatSync]),
					stats.FmtBytes(m.MaxMem), stats.FmtBytes(m.StoreBytes), fmt.Sprint(m.Supersteps))
			}
		}
		table.Render(os.Stderr)
	}

	flushArtifacts()
}

// writeRunArtifacts exports the Chrome trace and per-rank metrics files:
// in -dist mode every worker writes its own rank's slice into a
// rank-suffixed file, in-process mode one file with all ranks. Errors are
// reported rather than fatal — this also runs on the failure path, where
// an exit is already in progress.
func writeRunArtifacts(tracer *trace.Tracer, traceOut, metricsOut, mode string,
	isDist bool, myRank, procs int, metricsFor func(int) *rt.Metrics, logf func(string, ...any)) {
	tracePath, metricsPath := traceOut, metricsOut
	if isDist {
		if tracePath != "" {
			tracePath += fmt.Sprintf(".rank%d", myRank)
		}
		if metricsPath != "" {
			metricsPath += fmt.Sprintf(".rank%d", myRank)
		}
	}
	if tracePath != "" {
		label := fmt.Sprintf("dibella %s procs=%d", mode, procs)
		f, err := os.Create(tracePath)
		if err == nil {
			err = trace.WriteChromeTrace(f, tracer, label)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dibella: -trace: %v\n", err)
			return
		}
		logf("dibella: trace -> %s\n", tracePath)
	}
	if metricsPath != "" {
		var rows []trace.RankMetrics
		if isDist {
			rows = []trace.RankMetrics{rt.TraceRow(myRank, metricsFor(myRank), tracer.Rank(myRank))}
		} else {
			rows = make([]trace.RankMetrics, procs)
			for rk := 0; rk < procs; rk++ {
				rows[rk] = rt.TraceRow(rk, metricsFor(rk), tracer.Rank(rk))
			}
		}
		f, err := os.Create(metricsPath)
		if err == nil {
			if strings.HasSuffix(metricsOut, ".json") {
				err = trace.WriteMetricsJSON(f, rows)
			} else {
				err = trace.WriteMetricsCSV(f, rows)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dibella: -metrics: %v\n", err)
			return
		}
		logf("dibella: metrics -> %s\n", metricsPath)
	}
}

// writePAF renders one saved alignment as a PAF record (the de-facto
// interchange format for long-read overlaps), recomputing the edit
// transcript for the residue-match and cg:Z fields. Coordinates follow the
// PAF convention: for '-' strand hits, target coordinates are reported on
// the original strand.
func writePAF(w io.Writer, reads *seq.ReadSet, t overlap.Task, h core.Hit, x int) error {
	ra, rb := reads.Get(h.A), reads.Get(h.B)
	b := rb.Seq
	if h.RC {
		b = b.ReverseComplement()
	}
	_, cigar, err := align.SeedExtendTrace(ra.Seq, b, int(t.Seed.PosA), int(t.Seed.PosB),
		int(t.Seed.K), align.DefaultScoring(), x)
	if err != nil {
		return err
	}
	_, _, matches, alnLen := cigar.Counts()
	strand := "+"
	tStart, tEnd := int(h.BStart), int(h.BEnd)
	if h.RC {
		strand = "-"
		tStart, tEnd = rb.Len()-int(h.BEnd), rb.Len()-int(h.BStart)
	}
	_, err = fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t255\tAS:i:%d\tcg:Z:%s\n",
		ra.Name, ra.Len(), h.AStart, h.AEnd, strand,
		rb.Name, rb.Len(), tStart, tEnd, matches, alnLen, h.Score, cigar)
	return err
}

// exitHooks are cleanups that must survive fail(): os.Exit skips defers,
// so anything that has to flush on the failure path (trace and metrics
// export during a graceful drain, most importantly) registers here.
var exitHooks struct {
	mu  sync.Mutex
	ran bool
	fns []func()
}

// onExit registers f to run (once, reverse order) before any exit path.
func onExit(f func()) {
	exitHooks.mu.Lock()
	exitHooks.fns = append(exitHooks.fns, f)
	exitHooks.mu.Unlock()
}

// runExitHooks runs the registered hooks exactly once.
func runExitHooks() {
	exitHooks.mu.Lock()
	fns, ran := exitHooks.fns, exitHooks.ran
	exitHooks.ran, exitHooks.fns = true, nil
	exitHooks.mu.Unlock()
	if ran {
		return
	}
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// parsePlacement resolves the -placement flag into a rank→slot permutation
// for p ranks: "" or "identity" → nil (identity), "reverse" → the reversed
// order, otherwise an explicit comma-separated slot list. Everything but
// identity is validated as a permutation.
func parsePlacement(s string, p int) ([]int, error) {
	var pl []int
	switch s {
	case "", "identity":
		return nil, nil
	case "reverse":
		pl = make([]int, p)
		for q := range pl {
			pl[q] = p - 1 - q
		}
	default:
		parts := strings.Split(s, ",")
		if len(parts) != p {
			return nil, fmt.Errorf("placement lists %d slots for %d ranks", len(parts), p)
		}
		pl = make([]int, p)
		for i, part := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("slot %d: %w", i, err)
			}
			pl[i] = v
		}
	}
	if err := dist.CheckPlacement(pl, p); err != nil {
		return nil, err
	}
	return pl, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dibella: %v\n", err)
	runExitHooks()
	os.Exit(1)
}

// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§4), per DESIGN.md's experiment index. Each
// iteration regenerates the experiment at a bench-friendly scale and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// exercises the entire evaluation. cmd/scaling runs the same experiments
// at the full default scales and prints the paper-shaped tables;
// EXPERIMENTS.md records paper-vs-measured from those runs.
package gnbody_test

import (
	"testing"

	"gnbody/internal/expt"
	"gnbody/internal/rt"
	"gnbody/internal/workload"
)

// benchParams shrinks the workloads so a full -bench=. pass stays in
// wall-clock budget; shapes at these sizes match the full-scale runs.
func benchParams(nodes ...int) expt.Params {
	return expt.Params{
		ScaleEColi30x:  32,
		ScaleEColi100x: 256,
		ScaleHumanCCS:  1024,
		RanksPerNode:   2,
		Nodes:          nodes,
		Seed:           1,
	}
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, ws, err := expt.Table1(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		var tasks int64
		for _, w := range ws {
			tasks += int64(len(w.Tasks))
		}
		b.ReportMetric(float64(tasks), "tasks")
	}
}

func BenchmarkFig3SingleNode(b *testing.B) {
	p := benchParams()
	p.RanksPerNode = 0 // fig3 always uses the machine's core count
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: |BSP−Async| runtime gap on 64+4 cores, as a fraction.
		bsp, async := rows[2], rows[3]
		gap := float64(async.Runtime-bsp.Runtime) / float64(bsp.Runtime)
		b.ReportMetric(100*gap, "gap%")
	}
}

func BenchmarkFig4ProblemSizes(b *testing.B) {
	p := benchParams()
	p.RanksPerNode = 0
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: compute-dominated share of the larger problem (§4.1:
		// ≈94% for E. coli 100x).
		r := rows[2]
		share := float64(r.Cat[rt.CatAlign]+r.Cat[rt.CatOverhead]) / float64(r.Runtime)
		b.ReportMetric(100*share, "compute%")
	}
}

func BenchmarkFig5LoadImbalance(b *testing.B) {
	p := benchParams(8, 32)
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.Fig5(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].AlignTimes.Imbalance(), "imbalance")
	}
}

func BenchmarkFig6ExchangeImbalance(b *testing.B) {
	p := benchParams(8, 32)
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1].RecvBytes
		b.ReportMetric(last.Max-last.Min, "spread-bytes")
	}
}

func BenchmarkFig7CommLatency(b *testing.B) {
	p := benchParams(8, 64)
	for i := 0; i < b.N; i++ {
		_, out, err := expt.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: async/BSP latency ratio at the small end (paper: >1)
		// and the large end (paper: <1 after the 32-64 node crossover).
		small := float64(out[expt.Async][0].Cat[rt.CatComm]) / float64(out[expt.BSP][0].Cat[rt.CatComm])
		large := float64(out[expt.Async][1].Cat[rt.CatComm]) / float64(out[expt.BSP][1].Cat[rt.CatComm])
		b.ReportMetric(small, "async/bsp-small")
		b.ReportMetric(large, "async/bsp-large")
	}
}

func BenchmarkFig8EColi100x(b *testing.B) {
	p := benchParams(1, 16, 64)
	for i := 0; i < b.N; i++ {
		_, out, err := expt.Fig8(p)
		if err != nil {
			b.Fatal(err)
		}
		last := len(out[expt.BSP]) - 1
		ratio := float64(out[expt.Async][last].Runtime) / float64(out[expt.BSP][last].Runtime)
		b.ReportMetric(100*ratio, "async/bsp%")
		b.ReportMetric(100*out[expt.BSP][last].CommShare(), "bsp-comm%")
	}
}

func BenchmarkFig9HumanCCSSmall(b *testing.B) {
	p := benchParams(8, 16)
	p.ScaleHumanCCS = 512
	p.RanksPerNode = 4 // the memory-pressure regime needs paper-equivalent budgets
	for i := 0; i < b.N; i++ {
		_, out, err := expt.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(out[expt.BSP][0].Supersteps), "supersteps")
	}
}

func BenchmarkFig10HumanCCSLarge(b *testing.B) {
	p := benchParams(64, 128)
	for i := 0; i < b.N; i++ {
		_, out, err := expt.Fig10(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(out[expt.BSP][0].Supersteps), "supersteps")
	}
}

func BenchmarkFig11MemoryFootprint(b *testing.B) {
	p := benchParams(8, 64)
	p.RanksPerNode = 4
	for i := 0; i < b.N; i++ {
		_, out, err := expt.Fig11(p)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: async footprint stays below BSP's at the small end.
		ratio := float64(out[expt.Async][0].MaxMem) / float64(out[expt.BSP][0].MaxMem)
		b.ReportMetric(ratio, "async/bsp-mem")
	}
}

func BenchmarkFig12MemoryRuntime(b *testing.B) {
	p := benchParams(8, 64)
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig12(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13TaskStoreTraversal(b *testing.B) {
	p := benchParams(8, 64)
	for i := 0; i < b.N; i++ {
		_, out, err := expt.Fig13(p)
		if err != nil {
			b.Fatal(err)
		}
		last := len(out[expt.Async]) - 1
		r := out[expt.Async][last]
		b.ReportMetric(100*float64(r.Cat[rt.CatOverhead])/float64(r.Runtime), "async-ovhd%")
	}
}

func BenchmarkIntranodeStrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.Intranode(expt.IntranodeParams{Scale: 400, MaxCores: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedup")
	}
}

func BenchmarkAblationOutstanding(b *testing.B) {
	p := benchParams(8)
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.AblationOutstanding(p, []int{4, 64, 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAggregation(b *testing.B) {
	p := benchParams(8)
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.AblationAggregation(p, []float64{1, 0.25, 0.0625})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].Supersteps), "steps-at-min-mem")
	}
}

func BenchmarkAblationNetwork(b *testing.B) {
	p := benchParams(8, 64)
	for i := 0; i < b.N; i++ {
		_, out, err := expt.AblationNetwork(p)
		if err != nil {
			b.Fatal(err)
		}
		last := len(out[expt.BSP]) - 1
		ratio := float64(out[expt.Async][last].Runtime) / float64(out[expt.BSP][last].Runtime)
		b.ReportMetric(100*ratio, "async/bsp%")
	}
}

// BenchmarkWorkloadSynthesis measures task-graph generation throughput.
func BenchmarkWorkloadSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := workload.Synthesize(workload.HumanCCS, 1024, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(w.Tasks)), "tasks")
	}
}

func BenchmarkAblationFetchBatch(b *testing.B) {
	p := benchParams(8)
	for i := 0; i < b.N; i++ {
		_, rows, err := expt.AblationFetchBatch(p, []int{1, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Runtime)/float64(rows[1].Runtime), "speedup-batch16")
	}
}

func BenchmarkAblationDynamicBalance(b *testing.B) {
	p := benchParams(8)
	for i := 0; i < b.N; i++ {
		_, out, err := expt.AblationDynamicBalance(p)
		if err != nil {
			b.Fatal(err)
		}
		last := len(out[expt.AsyncSteal]) - 1
		ratio := float64(out[expt.AsyncSteal][last].Runtime) / float64(out[expt.Async][last].Runtime)
		b.ReportMetric(100*ratio, "steal/static%")
	}
}

// E. coli overlap study: the paper's motivating genomics workload, end to
// end, with a ground-truth sensitivity evaluation.
//
// A scaled E. coli-like genome is sequenced synthetically at 30x with a
// 15% long-read error model (the paper's E. coli 30x regime). The pipeline
// finds candidate overlaps via the BELLA reliable-k-mer window, aligns them
// with X-drop seed-and-extend on all host cores, and then scores the
// result against the planted truth: how many genuine read overlaps were
// recovered (sensitivity) and how many saved alignments were spurious.
//
// Run with: go run ./examples/ecoli-overlap [-scale 200] [-procs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"gnbody/internal/align"
	"gnbody/internal/core"
	"gnbody/internal/genome"
	"gnbody/internal/par"
	"gnbody/internal/partition"
	"gnbody/internal/rt"
	"gnbody/internal/seq"
	"gnbody/internal/stats"
	"gnbody/internal/workload"
)

func main() {
	scale := flag.Int("scale", 300, "E. coli 30x scale divisor")
	procs := flag.Int("procs", runtime.NumCPU(), "ranks")
	minOverlap := flag.Int("minoverlap", 500, "true-overlap threshold for sensitivity (bp)")
	flag.Parse()

	t0 := time.Now()
	reads, tasks, truth, err := workload.Pipeline(workload.EColi30x, *scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %s\n", reads.ComputeStats())
	fmt.Printf("pipeline: %d candidate tasks in %s\n", len(tasks), time.Since(t0).Round(time.Millisecond))

	lens := workload.LensOf(reads)
	lensInt := make([]int, len(lens))
	for i, l := range lens {
		lensInt[i] = int(l)
	}
	pt, err := partition.BySize(lensInt, *procs)
	if err != nil {
		log.Fatal(err)
	}
	byRank := partition.AssignTasks(tasks, pt)
	world, err := par.NewWorld(par.Config{P: *procs})
	if err != nil {
		log.Fatal(err)
	}
	results := make([]*core.Result, *procs)
	t1 := time.Now()
	world.Run(func(r rt.Runtime) {
		lo, hi := pt.Range(r.Rank())
		st := seq.Scope(reads, lo, hi, lens)
		in := &core.Input{Part: pt, Lens: lens, Tasks: byRank[r.Rank()],
			Codec: core.RealCodec{Store: st}, Store: st}
		var e error
		results[r.Rank()], e = core.RunAsync(r, in, core.Config{
			Exec: core.RealExecutor{Scoring: align.DefaultScoring(), X: 15}, MinScore: 200})
		if e != nil {
			log.Fatal(e)
		}
	})
	fmt.Printf("aligned on %d ranks in %s\n", *procs, time.Since(t1).Round(time.Millisecond))

	// Sensitivity: which planted overlaps >= minOverlap did we recover?
	found := map[uint64]bool{}
	var hits int
	for _, res := range results {
		for _, h := range res.Hits {
			hits++
			found[uint64(h.A)<<32|uint64(h.B)] = true
		}
	}
	want := genome.OverlapGraph(truth, *minOverlap)
	recovered := 0
	for _, pair := range want {
		if found[uint64(pair[0])<<32|uint64(pair[1])] {
			recovered++
		}
	}
	table := &stats.Table{
		Title:   "Sensitivity against planted ground truth",
		Headers: []string{"metric", "value"},
	}
	table.AddRow("true overlaps >= threshold", fmt.Sprint(len(want)))
	table.AddRow("recovered by pipeline", fmt.Sprint(recovered))
	if len(want) > 0 {
		table.AddRow("sensitivity", stats.FmtPct(float64(recovered)/float64(len(want))))
	}
	table.AddRow("alignments saved", fmt.Sprint(hits))
	table.AddRow("candidates aligned", fmt.Sprint(len(tasks)))
	table.Render(os.Stdout)
}

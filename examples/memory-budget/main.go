// Memory-budget study: how per-rank memory shapes the bulk-synchronous
// exchange (the paper's central §5 argument: "the memory enabling (or
// limiting) message aggregation can limit achievable performance").
//
// The real pipeline runs on host cores while the per-rank exchange budget
// shrinks: with ample memory the BSP driver exchanges every read in one
// bandwidth-maximizing superstep; as the budget tightens it must split into
// more and more supersteps (dynamically sized, §3.1), paying extra
// synchronization and latency — while the result set stays identical, and
// the async driver doesn't care (it never holds more than MaxOutstanding
// reads).
//
// Run with: go run ./examples/memory-budget [-procs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"time"

	"gnbody/internal/align"
	"gnbody/internal/core"
	"gnbody/internal/par"
	"gnbody/internal/partition"
	"gnbody/internal/rt"
	"gnbody/internal/seq"
	"gnbody/internal/stats"
	"gnbody/internal/workload"
)

func main() {
	procs := flag.Int("procs", runtime.NumCPU(), "ranks")
	scale := flag.Int("scale", 400, "E. coli 30x scale divisor")
	flag.Parse()

	reads, tasks, _, err := workload.Pipeline(workload.EColi30x, *scale, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %s, %d tasks\n", reads.ComputeStats(), len(tasks))

	lens := workload.LensOf(reads)
	lensInt := make([]int, len(lens))
	for i, l := range lens {
		lensInt[i] = int(l)
	}
	pt, err := partition.BySize(lensInt, *procs)
	if err != nil {
		log.Fatal(err)
	}
	byRank := partition.AssignTasks(tasks, pt)
	exec := core.RealExecutor{Scoring: align.DefaultScoring(), X: 15}

	// Budgets from "ample" down to "barely fits the partition".
	var maxPart int64
	for rk := 0; rk < *procs; rk++ {
		in := core.Input{Part: pt, Lens: lens}
		if b := in.PartitionBytes(rk); b > maxPart {
			maxPart = b
		}
	}
	budgets := []int64{0, maxPart * 4, maxPart * 2, maxPart + 100000, maxPart + 20000}

	table := &stats.Table{
		Title:   "BSP supersteps vs per-rank exchange memory (identical results across all rows)",
		Headers: []string{"budget", "supersteps", "elapsed", "max-footprint", "hits"},
	}
	var reference []core.Hit
	for _, budget := range budgets {
		world, err := par.NewWorld(par.Config{P: *procs, MemBudget: budget})
		if err != nil {
			log.Fatal(err)
		}
		results := make([]*core.Result, *procs)
		t0 := time.Now()
		world.Run(func(r rt.Runtime) {
			rlo, rhi := pt.Range(r.Rank())
			st := seq.Scope(reads, rlo, rhi, lens)
			in := &core.Input{Part: pt, Lens: lens, Tasks: byRank[r.Rank()],
				Codec: core.RealCodec{Store: st}, Store: st}
			var e error
			results[r.Rank()], e = core.RunBSP(r, in, core.Config{Exec: exec, MinScore: 100})
			if e != nil {
				log.Fatal(e)
			}
		})
		elapsed := time.Since(t0)
		var hits []core.Hit
		steps := 0
		var maxMem int64
		for rk := 0; rk < *procs; rk++ {
			hits = append(hits, results[rk].Hits...)
			if results[rk].Supersteps > steps {
				steps = results[rk].Supersteps
			}
			if m := world.Metrics(rk).MaxMem; m > maxMem {
				maxMem = m
			}
		}
		core.SortHits(hits)
		if reference == nil {
			reference = hits
		} else if !reflect.DeepEqual(reference, hits) {
			log.Fatal("result set changed under memory pressure — bug!")
		}
		label := "unlimited"
		if budget > 0 {
			label = stats.FmtBytes(budget)
		}
		table.AddRow(label, fmt.Sprint(steps), stats.FmtDur(elapsed),
			stats.FmtBytes(maxMem), fmt.Sprint(len(hits)))
	}
	table.Render(os.Stdout)
	fmt.Println("result sets identical across all budgets ✓")
}

// Quickstart: the smallest end-to-end tour of the library.
//
// It generates a toy genome, samples a handful of noisy long reads, finds
// candidate overlaps through the k-mer filter, aligns every candidate with
// the X-drop kernel under both coordination strategies (bulk-synchronous
// and asynchronous) on 4 in-process ranks, and shows that the two produce
// identical results.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"reflect"

	"gnbody/internal/align"
	"gnbody/internal/core"
	"gnbody/internal/genome"
	"gnbody/internal/overlap"
	"gnbody/internal/par"
	"gnbody/internal/partition"
	"gnbody/internal/rt"
	"gnbody/internal/seq"
	"gnbody/internal/workload"
)

func main() {
	// 1. A toy dataset: 20 kb genome at 8x coverage, 5% error.
	g := genome.Generate(genome.Config{Length: 20000, Seed: 42})
	smp, err := genome.NewSampler(g, genome.ReadConfig{
		Coverage: 8, MeanLen: 1500, SigmaLog: 0.3,
		Errors: genome.ErrorModel{Substitution: 0.02, Insertion: 0.02, Deletion: 0.01},
		Seed:   43,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, _ := smp.Sample()
	fmt.Printf("sampled %s\n", reads.ComputeStats())

	// 2. Candidate overlaps: shared reliable k-mers seed the tasks.
	tasks, lo, hi, err := overlap.FromReadSet(reads, overlap.Config{K: 17, Coverage: 8, ErrRate: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d candidate pairs (reliable k-mer window [%d,%d])\n", len(tasks), lo, hi)

	// 3. Distribute: size-uniform read partition, tasks under the owner
	// invariant, then align under each strategy on 4 ranks.
	lens := workload.LensOf(reads)
	lensInt := make([]int, len(lens))
	for i, l := range lens {
		lensInt[i] = int(l)
	}
	const procs = 4
	pt, err := partition.BySize(lensInt, procs)
	if err != nil {
		log.Fatal(err)
	}
	byRank := partition.AssignTasks(tasks, pt)
	exec := core.RealExecutor{Scoring: align.DefaultScoring(), X: 15}

	run := func(async bool) []core.Hit {
		world, err := par.NewWorld(par.Config{P: procs})
		if err != nil {
			log.Fatal(err)
		}
		results := make([]*core.Result, procs)
		world.Run(func(r rt.Runtime) {
			rlo, rhi := pt.Range(r.Rank())
			st := seq.Scope(reads, rlo, rhi, lens)
			in := &core.Input{Part: pt, Lens: lens, Tasks: byRank[r.Rank()],
				Codec: core.RealCodec{Store: st}, Store: st}
			cfg := core.Config{Exec: exec, MinScore: 100}
			var e error
			if async {
				results[r.Rank()], e = core.RunAsync(r, in, cfg)
			} else {
				results[r.Rank()], e = core.RunBSP(r, in, cfg)
			}
			if e != nil {
				log.Fatal(e)
			}
		})
		var hits []core.Hit
		for _, res := range results {
			hits = append(hits, res.Hits...)
		}
		core.SortHits(hits)
		return hits
	}

	bsp := run(false)
	async := run(true)
	fmt.Printf("BSP saved %d alignments; Async saved %d\n", len(bsp), len(async))
	if !reflect.DeepEqual(bsp, async) {
		log.Fatal("the two strategies disagree — this is a bug")
	}
	fmt.Println("identical result sets ✓")
	for _, h := range bsp[:min(5, len(bsp))] {
		fmt.Printf("  %-24s x %-24s score %d\n", reads.Get(h.A).Name, reads.Get(h.B).Name, h.Score)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

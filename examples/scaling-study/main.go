// Scaling study: a compact BSP-vs-Async strong-scaling comparison on the
// performance simulator — the Figure 8 experiment of the paper at a size
// that runs in seconds on a laptop.
//
// The same driver code that aligned real reads in the other examples here
// runs under a discrete-event model of Cori KNL (Aries interconnect,
// 64 cores and 1.4 GB/core per node), scaling the E. coli 100x workload
// across node counts. Watch three things as nodes grow: BSP's visible
// communication share rises, Async hides most of its latency, and the
// Async/BSP runtime ratio drops below 100%.
//
// Run with: go run ./examples/scaling-study [-nodes 1,8,64] [-scale 128]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"gnbody/internal/expt"
	"gnbody/internal/rt"
	"gnbody/internal/sim"
	"gnbody/internal/stats"
	"gnbody/internal/workload"
)

func main() {
	nodesFlag := flag.String("nodes", "1,4,16,64", "node counts")
	scale := flag.Int("scale", 128, "E. coli 100x scale divisor")
	flag.Parse()

	var nodes []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bad node count %q", s)
		}
		nodes = append(nodes, n)
	}
	w, err := workload.Synthesize(workload.EColi100x, *scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s at 1/%d — %d reads, %d tasks (%d genuine)\n\n",
		w.Preset.Name, w.Scale, len(w.Lens), len(w.Tasks), w.TrueTasks)

	table := &stats.Table{
		Title:   "BSP vs Async strong scaling on simulated Cori KNL",
		Headers: []string{"nodes", "mode", "runtime", "comm%", "sync%", "async/bsp"},
	}
	for _, n := range nodes {
		var rows [2]*expt.Row
		for i, mode := range []expt.Mode{expt.BSP, expt.Async} {
			row, err := expt.RunSim(expt.SimSpec{
				Workload: w, Machine: sim.CoriKNL(), Nodes: n, Mode: mode, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			rows[i] = row
		}
		for i, row := range rows {
			ratio := ""
			if i == 1 {
				ratio = stats.FmtPct(float64(rows[1].Runtime) / float64(rows[0].Runtime))
			}
			table.AddRow(fmt.Sprint(n), string(row.Mode), stats.FmtDur(row.Runtime),
				stats.FmtPct(row.CommShare()),
				stats.FmtPct(float64(row.Cat[rt.CatSync])/float64(row.Runtime)), ratio)
		}
	}
	table.Render(os.Stdout)
}

module gnbody

go 1.22
